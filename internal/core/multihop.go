package core

import (
	"errors"
	"fmt"

	"teechain/internal/chain"
	"teechain/internal/cryptoutil"
	"teechain/internal/wire"
)

// This file implements the Teechain multi-hop payment protocol (Alg. 2):
// six stages — lock, sign, preUpdate, update, postUpdate, release —
// crossing the path three times, plus the intermediate settlement
// transaction τ and proofs of premature termination (PoPTs) that keep
// every channel's settlement consistent without synchronous blockchain
// access.
//
// Note on balance direction: Alg. 2's update-stage pseudocode (lines
// 38-39) has the signs inverted relative to its own lock-stage check
// (line 7, the payer needs balance on the downstream channel) and to
// Fig. 2 (Alice pays Bob). We follow the lock-stage semantics: value
// flows from path[0] to path[len-1].

// pathIndexOf returns the position of id on the path, or -1.
func pathIndexOf(path []wire.PathHop, id cryptoutil.PublicKey) int {
	for i, hop := range path {
		if hop.Identity == id {
			return i
		}
	}
	return -1
}

// validateMhPath rejects malformed paths before any channel is locked:
// too short to name a counterparty, or visiting an identity twice. A
// cyclic path would ask one node to lock two of its channels under a
// single MultihopState whose Index can only point at one position,
// deadlocking the stage machine — so it must never get as far as a
// lock. Two-hop paths (a single channel) are legal: the lane's
// optimistic Pay can be nacked after the sender's call returned, so a
// caller that needs a definite per-payment verdict — routed payments
// above all — runs even adjacent pairs through the lock/sign/update
// stages.
func validateMhPath(path []wire.PathHop) error {
	if len(path) < 2 {
		return errors.New("core: multi-hop path needs at least two hops")
	}
	seen := make(map[cryptoutil.PublicKey]bool, len(path))
	for _, hop := range path {
		if seen[hop.Identity] {
			return fmt.Errorf("core: path visits %s twice", hop.Identity)
		}
		seen[hop.Identity] = true
	}
	return nil
}

// validateMhFees checks a lock's fee schedule against its path: either
// empty (a fee-free legacy payment) or exactly one non-negative entry
// per hop with zero at both endpoints (the initiator spends, the
// recipient receives; neither forwards).
func validateMhFees(path []wire.PathHop, fees []chain.Amount) error {
	if len(fees) == 0 {
		return nil
	}
	if len(fees) != len(path) {
		return fmt.Errorf("core: %d fees for %d hops", len(fees), len(path))
	}
	if fees[0] != 0 || fees[len(fees)-1] != 0 {
		return errors.New("core: endpoint hops cannot charge forwarding fees")
	}
	var total chain.Amount
	for _, f := range fees {
		if f < 0 {
			return fmt.Errorf("core: negative forwarding fee %d", f)
		}
		total += f
		if total < 0 {
			return errors.New("core: fee schedule overflows")
		}
	}
	return nil
}

// mhInOut returns what hop idx receives from upstream (in) and forwards
// downstream (out): in = amount + Σ fees[idx:], out = in − fees[idx].
// Fees compound toward the sender, so the initiator's out is the full
// debit (amount plus every fee) and the recipient's in is exactly
// amount. An empty schedule degenerates to in = out = amount.
func mhInOut(amount chain.Amount, fees []chain.Amount, idx int) (in, out chain.Amount) {
	in = amount
	for i := len(fees) - 1; i >= idx; i-- {
		in += fees[i]
	}
	out = in
	if idx < len(fees) {
		out -= fees[idx]
	}
	return in, out
}

// channelTo selects an open, idle channel to peer with at least amount
// of our balance, preferring permanent channels over temporary ones
// only when both qualify (temporary channels exist to absorb load,
// §5.2, so they are picked first when usable).
func (e *Enclave) channelTo(peer cryptoutil.PublicKey, amount chain.Amount) (*ChannelState, error) {
	var fallback *ChannelState
	for _, c := range e.state.Channels {
		if c.Remote != peer || !c.Open || c.Closed || c.Stage != MhIdle || c.ClosePending {
			continue
		}
		if c.MyBal < amount {
			continue
		}
		if c.Temp {
			return c, nil
		}
		if fallback == nil {
			fallback = c
		}
	}
	if fallback != nil {
		return fallback, nil
	}
	return nil, fmt.Errorf("%w: no usable channel to %s with balance %d", ErrChannelLocked, peer, amount)
}

// addChannelToTau extends τ with a channel's deposits as inputs and its
// post-payment balances as outputs. delta is the balance change of the
// channel owner (negative when paying downstream).
func (e *Enclave) addChannelToTau(tau *chain.Transaction, c *ChannelState, delta chain.Amount) error {
	myKey, remoteKey, err := e.settlementKeys(c)
	if err != nil {
		return err
	}
	deps := make([]chain.OutPoint, 0, len(c.MyDeps)+len(c.RemoteDeps))
	for _, d := range c.MyDeps {
		deps = append(deps, d.Point)
	}
	for _, d := range c.RemoteDeps {
		deps = append(deps, d.Point)
	}
	if len(deps) == 0 {
		return fmt.Errorf("core: channel %s has no deposits", c.ID)
	}
	for _, p := range chain.SortOutPoints(deps) {
		tau.Inputs = append(tau.Inputs, chain.TxIn{Prev: p})
	}
	myPost := c.MyBal + delta
	remotePost := c.RemoteBal - delta
	if myPost < 0 || remotePost < 0 {
		return ErrInsufficient
	}
	if myPost > 0 {
		tau.Outputs = append(tau.Outputs, chain.TxOut{Value: myPost, Script: chain.PayToKey(myKey)})
	}
	if remotePost > 0 {
		tau.Outputs = append(tau.Outputs, chain.TxOut{Value: remotePost, Script: chain.PayToKey(remoteKey)})
	}
	return nil
}

// ErrStaleTau marks a τ whose recorded post-payment balances no longer
// match the channel: the sender built it from a balance snapshot that a
// concurrent payment has since moved. Benign — the initiator rebuilds τ
// from fresh balances and retries.
var ErrStaleTau = errors.New("core: stale τ")

// verifyTauChannel checks that τ covers channel c exactly: every
// deposit appears as an input and the post-payment balances appear as
// outputs. Receivers run it before accepting a lock, so a malicious
// upstream cannot smuggle in a τ that settles our channel wrong.
func (e *Enclave) verifyTauChannel(tau *chain.Transaction, c *ChannelState, delta chain.Amount) error {
	myKey, remoteKey, err := e.settlementKeys(c)
	if err != nil {
		return err
	}
	inputs := make(map[chain.OutPoint]bool, len(tau.Inputs))
	for _, in := range tau.Inputs {
		inputs[in.Prev] = true
	}
	for _, d := range append(append([]wire.DepositInfo{}, c.MyDeps...), c.RemoteDeps...) {
		if !inputs[d.Point] {
			return fmt.Errorf("core: τ missing deposit %s of channel %s", d.Point, c.ID)
		}
	}
	myPost := c.MyBal + delta
	remotePost := c.RemoteBal - delta
	if myPost < 0 || remotePost < 0 {
		return ErrInsufficient
	}
	if !tauPays(tau, myKey, myPost) {
		return fmt.Errorf("%w: τ does not pay our post-payment balance %d", ErrStaleTau, myPost)
	}
	if !tauPays(tau, remoteKey, remotePost) {
		return fmt.Errorf("%w: τ does not pay remote post-payment balance %d", ErrStaleTau, remotePost)
	}
	return nil
}

func tauPays(tau *chain.Transaction, key cryptoutil.PublicKey, value chain.Amount) bool {
	if value == 0 {
		return true
	}
	addr := key.Address()
	for _, o := range tau.Outputs {
		if o.Value == value && o.Script.Address() == addr {
			return true
		}
	}
	return false
}

// signTauLocal signs every τ input whose deposit key this enclave
// holds (its own deposits and counterparty-shared 1-of-1 keys).
func (e *Enclave) signTauLocal(tau *chain.Transaction, channels ...*ChannelState) error {
	for _, c := range channels {
		if c == nil {
			continue
		}
		deps := append(append([]wire.DepositInfo{}, c.MyDeps...), c.RemoteDeps...)
		for i, in := range tau.Inputs {
			for _, d := range deps {
				if d.Point != in.Prev {
					continue
				}
				for _, k := range d.Script.Keys {
					if kp, ok := e.btcKeys[k.Address()]; ok {
						if err := tau.SignInput(i, d.Script, kp); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	return nil
}

// mhChannels resolves the upstream and downstream channels of a
// payment at this node (nil when absent: the initiator has no upstream,
// the recipient no downstream).
func (e *Enclave) mhChannels(mh *MultihopState) (up, down *ChannelState) {
	for _, c := range e.state.Channels {
		if c.Payment == mh.Payment {
			if idx := pathIndexOf(mh.Path, c.Remote); idx >= 0 {
				if idx < mh.Index {
					up = c
				} else if idx > mh.Index {
					down = c
				}
			}
		}
	}
	return up, down
}

// PayMultihop initiates a fee-free multi-hop payment along path
// (payMultihop, Alg. 2 line 3). The initiator must be path[0] and the
// final recipient path[len-1]; intermediaries forward and the whole
// path updates atomically or not at all.
func (e *Enclave) PayMultihop(pid wire.PaymentID, amount chain.Amount, count int, path []cryptoutil.PublicKey) (*Result, error) {
	return e.PayMultihopFees(pid, amount, count, path, nil)
}

// PayMultihopFees initiates a multi-hop payment carrying a forwarding
// fee schedule (one entry per hop, zero at the endpoints — usually a
// route.Route's Fees): the recipient receives amount, each intermediary
// keeps its fee, and this enclave is debited amount plus every fee.
func (e *Enclave) PayMultihopFees(pid wire.PaymentID, amount chain.Amount, count int, path []cryptoutil.PublicKey, fees []chain.Amount) (*Result, error) {
	if amount <= 0 || count < 1 {
		return nil, fmt.Errorf("core: invalid multi-hop amount %d", amount)
	}
	hops := make([]wire.PathHop, len(path))
	for i, p := range path {
		hops[i] = wire.PathHop{Identity: p}
	}
	if err := validateMhPath(hops); err != nil {
		return nil, err
	}
	if err := validateMhFees(hops, fees); err != nil {
		return nil, err
	}
	if path[0] != e.identity.Public() {
		return nil, errors.New("core: multi-hop path must start at this enclave")
	}
	if _, ok := e.state.Multihop[pid]; ok {
		return nil, fmt.Errorf("core: payment %s already exists", pid)
	}
	_, send := mhInOut(amount, fees, 0)
	down, err := e.channelTo(path[1], send)
	if err != nil {
		return nil, err
	}
	tau := &chain.Transaction{}
	if err := e.addChannelToTau(tau, down, -send); err != nil {
		return nil, err
	}
	res, err := e.commit(&Op{Kind: OpMhStart, Payment: pid, Amount: amount, Count: count, Path: hops, Index: 0, Fees: fees}, nil, nil)
	if err != nil {
		return nil, err
	}
	out := oneOut(path[1], &wire.MhLock{
		Payment: pid, Amount: amount, Count: count, Path: hops, Channel: down.ID, Tau: tau, Fees: fees,
	})
	res2, err := e.commit(&Op{Kind: OpMhStage, Payment: pid, Channel: down.ID, Stage: MhLock}, out, nil)
	if err != nil {
		return nil, err
	}
	return res.merge(res2), nil
}

func (e *Enclave) handleMhLock(from cryptoutil.PublicKey, m *wire.MhLock) (*Result, error) {
	if err := validateMhPath(m.Path); err != nil {
		return nil, err
	}
	if err := validateMhFees(m.Path, m.Fees); err != nil {
		return nil, err
	}
	myIdx := pathIndexOf(m.Path, e.identity.Public())
	if myIdx <= 0 {
		return nil, errors.New("core: not on the payment path")
	}
	if m.Path[myIdx-1].Identity != from {
		return nil, errors.New("core: lock from non-predecessor")
	}
	if m.Amount <= 0 || m.Count < 1 {
		return nil, errors.New("core: invalid multi-hop amount")
	}
	if _, ok := e.state.Multihop[m.Payment]; ok {
		return nil, fmt.Errorf("core: payment %s already exists", m.Payment)
	}
	in, fwd := mhInOut(m.Amount, m.Fees, myIdx)

	abort := func(reason string) (*Result, error) {
		return &Result{Out: oneOut(from, &wire.MhAbort{Payment: m.Payment, Reason: reason})}, nil
	}
	// Benign refusals: the channel is mid-way through another payment or
	// τ was built from balances a concurrent payment has since moved.
	// Both clear on their own, so the initiator may simply retry.
	abortTransient := func(reason string) (*Result, error) {
		return &Result{Out: oneOut(from, &wire.MhAbort{Payment: m.Payment, Reason: reason, Transient: true})}, nil
	}

	up, ok := e.state.Channels[m.Channel]
	if !ok || up.Remote != from || !up.Open || up.Closed {
		return abort("unknown upstream channel")
	}
	if up.Stage != MhIdle {
		return abortTransient("upstream channel locked")
	}
	if up.RemoteBal < in {
		return abort("upstream payer balance insufficient")
	}
	if m.Tau == nil {
		return abort("missing τ")
	}
	// Validate that τ settles the upstream channel at the correct
	// post-payment state before committing to anything.
	if err := e.verifyTauChannel(m.Tau, up, in); err != nil {
		if errors.Is(err, ErrStaleTau) {
			return abortTransient(err.Error())
		}
		return abort(err.Error())
	}

	last := myIdx == len(m.Path)-1
	var down *ChannelState
	if !last {
		// Forwarding is paid work: the schedule must cover this hop's
		// policy on the amount it forwards. A shortfall means the sender
		// routed on a stale fee announcement — transient, so the host
		// resyncs its graph and repaths (the announced policy rides the
		// abort reason for immediate correction).
		var fee chain.Amount
		if myIdx < len(m.Fees) {
			fee = m.Fees[myIdx]
		}
		if want := e.feePolicy.Fee(fwd); fee < want {
			return abortTransient(fmt.Sprintf("forwarding fee %d below policy (want %d)", fee, want))
		}
		var err error
		down, err = e.channelTo(m.Path[myIdx+1].Identity, fwd)
		if err != nil {
			if errors.Is(err, ErrChannelLocked) {
				return abortTransient("no downstream capacity: " + err.Error())
			}
			return abort("no downstream capacity: " + err.Error())
		}
		if err := e.addChannelToTau(m.Tau, down, -fwd); err != nil {
			return abort(err.Error())
		}
	}

	res, err := e.commit(&Op{Kind: OpMhStart, Payment: m.Payment, Amount: m.Amount, Count: m.Count, Path: m.Path, Index: myIdx, Fees: m.Fees}, nil, nil)
	if err != nil {
		return nil, err
	}

	if last {
		// Recipient: sign τ for our keys and send sign backward
		// (Alg. 2 lines 12-14). The sign-stage op carries τ so our
		// committee countersigns via the replication acknowledgement.
		if err := e.signTauLocal(m.Tau, up); err != nil {
			return nil, err
		}
		out := oneOut(from, &wire.MhSign{Payment: m.Payment, Tau: m.Tau})
		res2, err := e.commit(&Op{Kind: OpMhStage, Payment: m.Payment, Channel: up.ID, Stage: MhSign, Tau: m.Tau}, out, nil)
		if err != nil {
			return nil, err
		}
		return res.merge(res2), nil
	}

	res2, err := e.commit(&Op{Kind: OpMhStage, Payment: m.Payment, Channel: up.ID, Stage: MhLock}, nil, nil)
	if err != nil {
		return nil, err
	}
	res.merge(res2)
	out := oneOut(m.Path[myIdx+1].Identity, &wire.MhLock{
		Payment: m.Payment, Amount: m.Amount, Count: m.Count, Path: m.Path, Channel: down.ID, Tau: m.Tau, Fees: m.Fees,
	})
	res3, err := e.commit(&Op{Kind: OpMhStage, Payment: m.Payment, Channel: down.ID, Stage: MhLock}, out, nil)
	if err != nil {
		return nil, err
	}
	return res.merge(res3), nil
}

func (e *Enclave) handleMhSign(from cryptoutil.PublicKey, m *wire.MhSign) (*Result, error) {
	mh, ok := e.state.Multihop[m.Payment]
	if !ok {
		return nil, fmt.Errorf("core: unknown payment %s", m.Payment)
	}
	if mh.Index+1 >= len(mh.Path) || mh.Path[mh.Index+1].Identity != from {
		return nil, errors.New("core: sign from non-successor")
	}
	up, down := e.mhChannels(mh)
	if down == nil || down.Stage != MhLock {
		return nil, fmt.Errorf("core: sign while downstream channel not locked")
	}
	if m.Tau == nil {
		return nil, errors.New("core: sign without τ")
	}
	if err := e.signTauLocal(m.Tau, up, down); err != nil {
		return nil, err
	}

	if mh.Index > 0 {
		out := oneOut(mh.Path[mh.Index-1].Identity, &wire.MhSign{Payment: m.Payment, Tau: m.Tau})
		return e.commit(&Op{Kind: OpMhStage, Payment: m.Payment, Channel: down.ID, Stage: MhSign, Tau: m.Tau}, out, nil)
	}

	// Initiator: τ must now be fully signed; verify before exposing
	// ourselves to τ-only settlement (Alg. 2 lines 20-23).
	res, err := e.commit(&Op{Kind: OpMhStage, Payment: m.Payment, Channel: down.ID, Stage: MhSign, Tau: m.Tau}, nil, nil)
	if err != nil {
		return nil, err
	}
	pre := oneOut(mh.Path[1].Identity, &wire.MhPreUpdate{Payment: m.Payment, Tau: m.Tau})
	res2, err := e.commit(&Op{Kind: OpMhStage, Payment: m.Payment, Channel: down.ID, Stage: MhPreUpdate, Tau: m.Tau}, pre, nil)
	if err != nil {
		return nil, err
	}
	return res.merge(res2), nil
}

func (e *Enclave) handleMhPreUpdate(from cryptoutil.PublicKey, m *wire.MhPreUpdate) (*Result, error) {
	mh, ok := e.state.Multihop[m.Payment]
	if !ok {
		return nil, fmt.Errorf("core: unknown payment %s", m.Payment)
	}
	if mh.Index == 0 || mh.Path[mh.Index-1].Identity != from {
		return nil, errors.New("core: preUpdate from non-predecessor")
	}
	up, down := e.mhChannels(mh)
	if up == nil {
		return nil, errors.New("core: preUpdate without upstream channel")
	}
	last := mh.Index == len(mh.Path)-1

	if last {
		if up.Stage != MhSign {
			return nil, fmt.Errorf("core: preUpdate at recipient in stage %v", up.Stage)
		}
		// Recipient applies the balance and sends update backward
		// (Alg. 2 lines 30-33).
		res, err := e.commit(&Op{Kind: OpMhStage, Payment: m.Payment, Channel: up.ID, Stage: MhPreUpdate, Tau: m.Tau}, nil, nil)
		if err != nil {
			return nil, err
		}
		out := oneOut(from, &wire.MhUpdate{Payment: m.Payment})
		ev := []Event{EvMultihopArrived{Payment: m.Payment, Amount: mh.Amount, Count: mh.Count}}
		res2, err := e.commit(&Op{Kind: OpMhStage, Payment: m.Payment, Channel: up.ID, Stage: MhUpdate, Amount: mh.Amount}, out, ev)
		if err != nil {
			return nil, err
		}
		return res.merge(res2), nil
	}

	if down == nil || down.Stage != MhSign {
		return nil, errors.New("core: preUpdate while downstream not in sign stage")
	}
	res, err := e.commit(&Op{Kind: OpMhStage, Payment: m.Payment, Channel: up.ID, Stage: MhPreUpdate, Tau: m.Tau}, nil, nil)
	if err != nil {
		return nil, err
	}
	out := oneOut(mh.Path[mh.Index+1].Identity, &wire.MhPreUpdate{Payment: m.Payment, Tau: m.Tau})
	res2, err := e.commit(&Op{Kind: OpMhStage, Payment: m.Payment, Channel: down.ID, Stage: MhPreUpdate, Tau: m.Tau}, out, nil)
	if err != nil {
		return nil, err
	}
	return res.merge(res2), nil
}

func (e *Enclave) handleMhUpdate(from cryptoutil.PublicKey, m *wire.MhUpdate) (*Result, error) {
	mh, ok := e.state.Multihop[m.Payment]
	if !ok {
		return nil, fmt.Errorf("core: unknown payment %s", m.Payment)
	}
	if mh.Index+1 >= len(mh.Path) || mh.Path[mh.Index+1].Identity != from {
		return nil, errors.New("core: update from non-successor")
	}
	up, down := e.mhChannels(mh)
	if down == nil || down.Stage != MhPreUpdate {
		return nil, errors.New("core: update while downstream not in preUpdate")
	}

	// Pay downstream (our balance on the downstream channel drops by
	// what we forward: the fee schedule's residue stays with us).
	in, fwd := mhInOut(mh.Amount, mh.Fees, mh.Index)
	res, err := e.commit(&Op{Kind: OpMhStage, Payment: m.Payment, Channel: down.ID, Stage: MhUpdate, Amount: -fwd}, nil, nil)
	if err != nil {
		return nil, err
	}

	if mh.Index > 0 {
		if up == nil {
			return nil, errors.New("core: interior node lost upstream channel")
		}
		// Receive upstream and forward the update.
		out := oneOut(mh.Path[mh.Index-1].Identity, &wire.MhUpdate{Payment: m.Payment})
		res2, err := e.commit(&Op{Kind: OpMhStage, Payment: m.Payment, Channel: up.ID, Stage: MhUpdate, Amount: in}, out, nil)
		if err != nil {
			return nil, err
		}
		return res.merge(res2), nil
	}

	// Initiator: discard τ, move to postUpdate (Alg. 2 lines 41-44).
	out := oneOut(mh.Path[1].Identity, &wire.MhPostUpdate{Payment: m.Payment})
	res2, err := e.commit(&Op{Kind: OpMhStage, Payment: m.Payment, Channel: down.ID, Stage: MhPostUpdate}, out, nil)
	if err != nil {
		return nil, err
	}
	return res.merge(res2), nil
}

func (e *Enclave) handleMhPostUpdate(from cryptoutil.PublicKey, m *wire.MhPostUpdate) (*Result, error) {
	mh, ok := e.state.Multihop[m.Payment]
	if !ok {
		return nil, fmt.Errorf("core: unknown payment %s", m.Payment)
	}
	if mh.Index == 0 || mh.Path[mh.Index-1].Identity != from {
		return nil, errors.New("core: postUpdate from non-predecessor")
	}
	up, down := e.mhChannels(mh)
	if up == nil || up.Stage != MhUpdate {
		return nil, errors.New("core: postUpdate while upstream not updated")
	}
	last := mh.Index == len(mh.Path)-1

	if last {
		// Recipient: unlock and send release backward (lines 52-54).
		res, err := e.commit(&Op{Kind: OpMhStage, Payment: m.Payment, Channel: up.ID, Stage: MhIdle}, nil, nil)
		if err != nil {
			return nil, err
		}
		out := oneOut(from, &wire.MhRelease{Payment: m.Payment})
		res2, err := e.commit(&Op{Kind: OpMhFinish, Payment: m.Payment}, out, nil)
		if err != nil {
			return nil, err
		}
		return res.merge(res2), nil
	}

	if down == nil || down.Stage != MhUpdate {
		return nil, errors.New("core: postUpdate while downstream not updated")
	}
	res, err := e.commit(&Op{Kind: OpMhStage, Payment: m.Payment, Channel: up.ID, Stage: MhPostUpdate}, nil, nil)
	if err != nil {
		return nil, err
	}
	out := oneOut(mh.Path[mh.Index+1].Identity, &wire.MhPostUpdate{Payment: m.Payment})
	res2, err := e.commit(&Op{Kind: OpMhStage, Payment: m.Payment, Channel: down.ID, Stage: MhPostUpdate}, out, nil)
	if err != nil {
		return nil, err
	}
	return res.merge(res2), nil
}

func (e *Enclave) handleMhRelease(from cryptoutil.PublicKey, m *wire.MhRelease) (*Result, error) {
	mh, ok := e.state.Multihop[m.Payment]
	if !ok {
		return nil, fmt.Errorf("core: unknown payment %s", m.Payment)
	}
	if mh.Index+1 >= len(mh.Path) || mh.Path[mh.Index+1].Identity != from {
		return nil, errors.New("core: release from non-successor")
	}
	up, down := e.mhChannels(mh)
	if down == nil || down.Stage != MhPostUpdate {
		return nil, errors.New("core: release while downstream not in postUpdate")
	}
	res, err := e.commit(&Op{Kind: OpMhStage, Payment: m.Payment, Channel: down.ID, Stage: MhIdle}, nil, nil)
	if err != nil {
		return nil, err
	}
	if mh.Index > 0 {
		if up != nil && up.Stage == MhPostUpdate {
			r, err := e.commit(&Op{Kind: OpMhStage, Payment: m.Payment, Channel: up.ID, Stage: MhIdle}, nil, nil)
			if err != nil {
				return nil, err
			}
			res.merge(r)
		}
		out := oneOut(mh.Path[mh.Index-1].Identity, &wire.MhRelease{Payment: m.Payment})
		r, err := e.commit(&Op{Kind: OpMhFinish, Payment: m.Payment}, out, nil)
		if err != nil {
			return nil, err
		}
		return res.merge(r), nil
	}
	// Initiator: the payment is complete.
	ev := []Event{EvMultihopComplete{Payment: m.Payment, OK: true}}
	r, err := e.commit(&Op{Kind: OpMhFinish, Payment: m.Payment}, nil, ev)
	if err != nil {
		return nil, err
	}
	return res.merge(r), nil
}

func (e *Enclave) handleMhAbort(from cryptoutil.PublicKey, m *wire.MhAbort) (*Result, error) {
	mh, ok := e.state.Multihop[m.Payment]
	if !ok {
		// Abort for a payment we never locked (failed before us):
		// nothing to unwind. If we are the initiator-to-be this is the
		// completion signal.
		return &Result{Events: []Event{EvMultihopComplete{Payment: m.Payment, OK: false, Reason: m.Reason, Transient: m.Transient}}}, nil
	}
	if mh.Index+1 >= len(mh.Path) || mh.Path[mh.Index+1].Identity != from {
		return nil, errors.New("core: abort from non-successor")
	}
	up, down := e.mhChannels(mh)
	// Aborting is only legal during the lock phase: after sign, τ may
	// exist and termination must go through eject (§5.1).
	for _, c := range []*ChannelState{up, down} {
		if c != nil && c.Stage != MhLock && c.Stage != MhSign {
			return nil, fmt.Errorf("core: abort in stage %v refused", c.Stage)
		}
	}
	res := &Result{}
	for _, c := range []*ChannelState{up, down} {
		if c == nil {
			continue
		}
		r, err := e.commit(&Op{Kind: OpMhStage, Payment: m.Payment, Channel: c.ID, Stage: MhIdle}, nil, nil)
		if err != nil {
			return nil, err
		}
		res.merge(r)
	}
	var out []Outbound
	var evs []Event
	if mh.Index > 0 {
		out = oneOut(mh.Path[mh.Index-1].Identity, &wire.MhAbort{Payment: m.Payment, Reason: m.Reason, Transient: m.Transient})
	} else {
		evs = []Event{EvMultihopComplete{Payment: m.Payment, OK: false, Reason: m.Reason, Transient: m.Transient}}
	}
	r, err := e.commit(&Op{Kind: OpMhFinish, Payment: m.Payment}, out, evs)
	if err != nil {
		return nil, err
	}
	return res.merge(r), nil
}

func (e *Enclave) handleMhAck(from cryptoutil.PublicKey, m *wire.MhAck) (*Result, error) {
	return &Result{Events: []Event{EvMultihopComplete{Payment: m.Payment, OK: m.OK, Reason: m.Reason}}}, nil
}
