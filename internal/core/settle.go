package core

import (
	"errors"
	"fmt"

	"teechain/internal/chain"
	"teechain/internal/cryptoutil"
	"teechain/internal/wire"
)

// This file constructs and authorizes settlement transactions: channel
// termination (Alg. 1 settle), ejection during multi-hop payments, and
// the validation committee members run before countersigning.

// SettleResult is the outcome of a settle or eject entry point.
type SettleResult struct {
	// OffChain reports cooperative termination without a transaction.
	OffChain bool
	// Txs are the settlement transactions to submit; Needs lists, per
	// transaction, inputs still requiring committee signatures.
	Txs   []*chain.Transaction
	Needs [][]SigNeed
	// Result carries protocol messages and events to dispatch.
	Result *Result
}

// buildChannelSettlement constructs the transaction settling channel c
// at balances (myBal, remoteBal): all channel deposits in, one output
// per non-zero balance.
func buildChannelSettlement(c *ChannelState, myBal, remoteBal chain.Amount, myKey, remoteKey cryptoutil.PublicKey) (*chain.Transaction, []wire.DepositInfo, error) {
	deps := make([]wire.DepositInfo, 0, len(c.MyDeps)+len(c.RemoteDeps))
	deps = append(deps, c.MyDeps...)
	deps = append(deps, c.RemoteDeps...)
	if len(deps) == 0 {
		return nil, nil, fmt.Errorf("core: channel %s has no deposits to settle", c.ID)
	}
	var total chain.Amount
	points := make([]chain.OutPoint, len(deps))
	byPoint := make(map[chain.OutPoint]wire.DepositInfo, len(deps))
	for i, d := range deps {
		points[i] = d.Point
		byPoint[d.Point] = d
		total += d.Value
	}
	if myBal+remoteBal != total {
		return nil, nil, fmt.Errorf("core: settlement balances %d+%d do not match deposits %d",
			myBal, remoteBal, total)
	}
	tx := &chain.Transaction{}
	ordered := make([]wire.DepositInfo, 0, len(deps))
	for _, p := range chain.SortOutPoints(points) {
		tx.Inputs = append(tx.Inputs, chain.TxIn{Prev: p})
		ordered = append(ordered, byPoint[p])
	}
	if myBal > 0 {
		tx.Outputs = append(tx.Outputs, chain.TxOut{Value: myBal, Script: chain.PayToKey(myKey)})
	}
	if remoteBal > 0 {
		tx.Outputs = append(tx.Outputs, chain.TxOut{Value: remoteBal, Script: chain.PayToKey(remoteKey)})
	}
	return tx, ordered, nil
}

// settlementKeys resolves the 1-of-1 payout keys for both channel
// parties from the replicated payout directory. Keys are exchanged out
// of band alongside identity keys (RegisterPayoutKey) and replicated so
// committee mirrors can settle after an owner crash.
func (e *Enclave) settlementKeys(c *ChannelState) (cryptoutil.PublicKey, cryptoutil.PublicKey, error) {
	myKey, ok := e.state.PayoutKeys[c.MyAddr]
	if !ok {
		return cryptoutil.PublicKey{}, cryptoutil.PublicKey{}, fmt.Errorf("core: no payout key for my address %s", c.MyAddr)
	}
	remoteKey, ok := e.state.PayoutKeys[c.RemoteAddr]
	if !ok {
		return cryptoutil.PublicKey{}, cryptoutil.PublicKey{}, fmt.Errorf("core: no payout key for remote address %s", c.RemoteAddr)
	}
	return myKey, remoteKey, nil
}

// DepsForTx reconstructs the deposit descriptions behind a settlement
// transaction's inputs from enclave state. Hosts (core.Node and the
// socket transport) need them to drive committee signature collection
// for inputs the enclave cannot sign alone.
func (e *Enclave) DepsForTx(tx *chain.Transaction) []wire.DepositInfo {
	deps := make([]wire.DepositInfo, len(tx.Inputs))
	for i, in := range tx.Inputs {
		if rec, ok := e.state.Deposits[in.Prev]; ok {
			deps[i] = rec.Info
			continue
		}
		for _, c := range e.state.Channels {
			if j := c.findDep(c.RemoteDeps, in.Prev); j >= 0 {
				deps[i] = c.RemoteDeps[j]
				break
			}
			if j := c.findDep(c.MyDeps, in.Prev); j >= 0 {
				deps[i] = c.MyDeps[j]
				break
			}
		}
	}
	return deps
}

// RegisterPayoutKey teaches the enclave the public key behind a
// settlement address so it can construct outputs paying it. The mapping
// replicates to committee mirrors.
func (e *Enclave) RegisterPayoutKey(key cryptoutil.PublicKey) (*Result, error) {
	return e.commit(&Op{Kind: OpRegisterPayoutKey, Remote: key}, nil, nil)
}

// signSettlementInputs signs every input the enclave holds keys for and
// returns the outstanding committee needs for the rest.
func (e *Enclave) signSettlementInputs(tx *chain.Transaction, deps []wire.DepositInfo) []SigNeed {
	var needs []SigNeed
	for i, d := range deps {
		signed := 0
		for _, k := range d.Script.Keys {
			kp, ok := e.btcKeys[k.Address()]
			if !ok {
				continue
			}
			if err := tx.SignInput(i, d.Script, kp); err == nil {
				signed++
				if signed >= d.Script.M {
					break
				}
			}
		}
		if signed < d.Script.M {
			need := SigNeed{Input: i, Committee: d.Committee}
			for _, m := range d.Members {
				if m.Identity != e.identity.Public() {
					need.Members = append(need.Members, m.Identity)
				}
			}
			needs = append(needs, need)
		}
	}
	return needs
}

// Settle terminates a channel (settle, Alg. 1 line 105). Neutral
// channels terminate off-chain by dissociating every deposit; otherwise
// a settlement transaction is produced for the host to complete and
// submit, and the remote is notified.
func (e *Enclave) Settle(id wire.ChannelID) (*SettleResult, error) {
	c, err := e.state.openChannel(id)
	if err != nil {
		return nil, err
	}
	if c.Stage != MhIdle {
		return nil, ErrChannelLocked
	}
	if c.Neutral() {
		res, err := e.commit(&Op{Kind: OpSettleIntent, Channel: id}, oneOut(c.Remote, &wire.SettleRequest{Channel: id}), nil)
		if err != nil {
			return nil, err
		}
		// Dissociate all our deposits; the peer mirrors on request.
		for _, d := range append([]wire.DepositInfo{}, c.MyDeps...) {
			r, err := e.DissociateDeposit(id, d.Point)
			if err != nil {
				return nil, err
			}
			res.merge(r)
		}
		final, err := e.maybeCloseNeutral(id, res)
		if err != nil {
			return nil, err
		}
		return &SettleResult{OffChain: true, Result: final}, nil
	}

	myKey, remoteKey, err := e.settlementKeys(c)
	if err != nil {
		return nil, err
	}
	tx, deps, err := buildChannelSettlement(c, c.MyBal, c.RemoteBal, myKey, remoteKey)
	if err != nil {
		return nil, err
	}
	needs := e.signSettlementInputs(tx, deps)
	out := oneOut(c.Remote, &wire.SettleNotify{Channel: id, Tx: tx})
	ev := []Event{
		EvChannelClosed{Channel: id, OffChain: false},
		EvSettlementReady{Channel: id, Tx: tx, Needs: needs},
	}
	res, err := e.commit(&Op{Kind: OpCloseChannel, Channel: id}, out, ev)
	if err != nil {
		return nil, err
	}
	return &SettleResult{Txs: []*chain.Transaction{tx}, Needs: [][]SigNeed{needs}, Result: res}, nil
}

func (e *Enclave) handleSettleRequest(from cryptoutil.PublicKey, m *wire.SettleRequest) (*Result, error) {
	c, err := e.state.openChannel(m.Channel)
	if err != nil {
		return nil, err
	}
	if c.Remote != from {
		return nil, errors.New("core: settle request from wrong peer")
	}
	if c.Stage != MhIdle {
		return nil, ErrChannelLocked
	}
	if !c.Neutral() {
		return nil, errors.New("core: cooperative close requested on non-neutral channel")
	}
	res, err := e.commit(&Op{Kind: OpSettleIntent, Channel: m.Channel}, nil, nil)
	if err != nil {
		return nil, err
	}
	for _, d := range append([]wire.DepositInfo{}, c.MyDeps...) {
		r, err := e.DissociateDeposit(m.Channel, d.Point)
		if err != nil {
			return nil, err
		}
		res.merge(r)
	}
	return e.maybeCloseNeutral(m.Channel, res)
}

func (e *Enclave) handleSettleNotify(from cryptoutil.PublicKey, m *wire.SettleNotify) (*Result, error) {
	c, ok := e.state.Channels[m.Channel]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownChannel, m.Channel)
	}
	if c.Remote != from {
		return nil, errors.New("core: settle notify from wrong peer")
	}
	if c.Closed {
		return &Result{}, nil
	}
	// Validate the counterparty's settlement against our own view; an
	// inconsistent transaction is evidence of compromise and would also
	// fail committee validation and blockchain conflict rules.
	if m.Tx != nil {
		if err := authorizeSettlement(e.state, m.Tx); err != nil {
			return nil, fmt.Errorf("core: remote settlement rejected: %w", err)
		}
	}
	ev := []Event{EvChannelClosed{Channel: m.Channel, OffChain: false}}
	return e.commit(&Op{Kind: OpCloseChannel, Channel: m.Channel}, nil, ev)
}

// errNoMatch distinguishes "this rule does not apply" from hard
// rejections inside authorizeSettlement.
var errNoMatch = errors.New("core: no matching authorization rule")

// authorizeSettlement decides whether tx is a settlement this state
// (an enclave's own, or a committee member's mirror) permits:
//
//   - a full channel settlement at current balances, allowed only in
//     multi-hop stages idle/lock/sign (pre-payment) and
//     postUpdate (post-payment) — never between preUpdate and update,
//     where only τ may settle (§5.1);
//   - the recorded τ of an in-flight payment;
//   - the release of a free deposit to the owner's payout address.
func authorizeSettlement(st *State, tx *chain.Transaction) error {
	if len(tx.Inputs) == 0 {
		return errors.New("core: settlement with no inputs")
	}
	if err := authorizeChannelSettlement(st, tx); !errors.Is(err, errNoMatch) {
		return err
	}
	if err := authorizeTau(st, tx); !errors.Is(err, errNoMatch) {
		return err
	}
	if err := authorizeRelease(st, tx); !errors.Is(err, errNoMatch) {
		return err
	}
	return errors.New("core: transaction matches no channel, τ, or free deposit")
}

func authorizeChannelSettlement(st *State, tx *chain.Transaction) error {
	// Identify the channel by the first input's deposit.
	var target *ChannelState
	for _, c := range st.Channels {
		if c.findDep(c.MyDeps, tx.Inputs[0].Prev) >= 0 || c.findDep(c.RemoteDeps, tx.Inputs[0].Prev) >= 0 {
			target = c
			break
		}
	}
	if target == nil {
		return errNoMatch
	}
	switch target.Stage {
	case MhIdle, MhLock, MhSign, MhPostUpdate:
		// Individual settlement allowed at current balances.
	default:
		return fmt.Errorf("core: channel %s in stage %v settles only via τ", target.ID, target.Stage)
	}
	// The transaction must spend exactly the channel's deposits.
	want := make(map[chain.OutPoint]bool, len(target.MyDeps)+len(target.RemoteDeps))
	var total chain.Amount
	for _, d := range target.MyDeps {
		want[d.Point] = true
		total += d.Value
	}
	for _, d := range target.RemoteDeps {
		want[d.Point] = true
		total += d.Value
	}
	if len(tx.Inputs) != len(want) {
		return fmt.Errorf("core: settlement spends %d inputs, channel %s has %d deposits",
			len(tx.Inputs), target.ID, len(want))
	}
	for _, in := range tx.Inputs {
		if !want[in.Prev] {
			return fmt.Errorf("core: settlement spends foreign outpoint %s", in.Prev)
		}
	}
	// Outputs must pay exactly the current balances to the registered
	// settlement addresses.
	paid := make(map[cryptoutil.Address]chain.Amount, len(tx.Outputs))
	for _, o := range tx.Outputs {
		paid[o.Script.Address()] += o.Value
	}
	if paid[target.MyAddr] != target.MyBal {
		return fmt.Errorf("core: settlement pays %d to owner, state says %d", paid[target.MyAddr], target.MyBal)
	}
	if paid[target.RemoteAddr] != target.RemoteBal {
		return fmt.Errorf("core: settlement pays %d to remote, state says %d", paid[target.RemoteAddr], target.RemoteBal)
	}
	if tx.OutputValue() != total {
		return errors.New("core: settlement output total does not match deposits")
	}
	return nil
}

func authorizeTau(st *State, tx *chain.Transaction) error {
	sig := tx.SigHash()
	for _, mh := range st.Multihop {
		if mh.Tau != nil && mh.Tau.SigHash() == sig {
			return nil
		}
	}
	return errNoMatch
}

func authorizeRelease(st *State, tx *chain.Transaction) error {
	if len(tx.Inputs) != 1 || len(tx.Outputs) != 1 {
		return errNoMatch
	}
	rec, ok := st.Deposits[tx.Inputs[0].Prev]
	if !ok {
		return errNoMatch
	}
	if !rec.Free && !rec.Released {
		return fmt.Errorf("core: deposit %s is not free to release", rec.Info.Point)
	}
	out := tx.Outputs[0]
	if out.Value != rec.Info.Value {
		return fmt.Errorf("core: release value %d does not match deposit %d", out.Value, rec.Info.Value)
	}
	if out.Script.Address() != st.OwnerPayout {
		return fmt.Errorf("core: release pays %s, owner payout is %s", out.Script.Address(), st.OwnerPayout)
	}
	return nil
}
