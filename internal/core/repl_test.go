package core

// Tests for the pipelined replication path (repl.go): enclaves wired
// directly (no simulator), with the test driving the flusher by hand so
// batching, windowing, release ordering, and the hardening against
// forged/replayed frames are all observable step by step.

import (
	"math"
	"strings"
	"testing"

	"teechain/internal/chain"
	"teechain/internal/cryptoutil"
	"teechain/internal/tee"
	"teechain/internal/wire"
)

// directWorld wires enclaves to each other without a simulator: every
// outbound message is queued and delivered synchronously by pump, and
// the replication log is flushed only when the test says so — exactly a
// socket host's flusher, minus the socket.
type directWorld struct {
	t     *testing.T
	encs  map[cryptoutil.PublicKey]*Enclave
	queue []Outbound
	from  []cryptoutil.PublicKey
	// events records boxed events per enclave identity, in order.
	events map[cryptoutil.PublicKey][]Event
	// wire records every replication frame delivered, for replay tests.
	replFrames []wire.Message
}

func newDirectWorld(t *testing.T) *directWorld {
	return &directWorld{
		t:      t,
		encs:   make(map[cryptoutil.PublicKey]*Enclave),
		events: make(map[cryptoutil.PublicKey][]Event),
	}
}

func (w *directWorld) enclave(auth *tee.Authority, name string) *Enclave {
	w.t.Helper()
	wallet, err := cryptoutil.GenerateKeyPair(cryptoutil.NewDeterministicReader([]byte("wallet"), []byte(name)))
	if err != nil {
		w.t.Fatal(err)
	}
	e, err := NewEnclave(tee.NewPlatform(auth, name), auth.PublicKey(), Config{
		MinConfirmations: 1,
		PayoutKey:        wallet.Public(),
	})
	if err != nil {
		w.t.Fatal(err)
	}
	w.encs[e.Identity()] = e
	return e
}

// dispatch queues a result's outbound messages and records its events.
func (w *directWorld) dispatch(from *Enclave, res *Result, err error) {
	w.t.Helper()
	if err != nil {
		w.t.Fatalf("dispatch from %s: %v", from.Identity(), err)
	}
	if res == nil {
		return
	}
	for _, out := range res.Out {
		w.queue = append(w.queue, out)
		w.from = append(w.from, from.Identity())
	}
	id := from.Identity()
	res.ForEachEvent(func(ev Event) { w.events[id] = append(w.events[id], ev) })
}

// pump delivers queued messages until the network is quiet. Events from
// receivers are recorded; channel requests are auto-accepted and
// deposit approvals auto-confirmed, like a host would.
func (w *directWorld) pump() {
	w.t.Helper()
	for len(w.queue) > 0 {
		out, from := w.queue[0], w.from[0]
		w.queue, w.from = w.queue[1:], w.from[1:]
		e, ok := w.encs[out.To]
		if !ok {
			w.t.Fatalf("no enclave for %s", out.To)
		}
		switch out.Msg.(type) {
		case *wire.ReplUpdate, *wire.ReplAck, *wire.ReplBatch, *wire.ReplBatchAck:
			w.replFrames = append(w.replFrames, out.Msg)
		}
		res, err := e.HandleMessage(from, out.Msg)
		w.dispatch(e, res, err)
		w.hostReactions(e)
	}
}

// hostReactions plays the host's role for events that need an answer.
func (w *directWorld) hostReactions(e *Enclave) {
	w.t.Helper()
	id := e.Identity()
	pending := w.events[id]
	w.events[id] = nil
	for _, ev := range pending {
		switch ev := ev.(type) {
		case EvChannelRequest:
			res, err := e.AcceptChannel(ev.Channel, ev.Remote, ev.RemoteAddr, e.cfg.PayoutKey.Address(), false)
			w.dispatch(e, res, err)
		case EvDepositApprovalNeeded:
			res, err := e.ConfirmRemoteDeposit(ev.Remote, ev.Deposit, 1)
			w.dispatch(e, res, err)
		}
	}
}

// connect runs mutual attestation between two enclaves.
func (w *directWorld) connect(a, b *Enclave) {
	w.t.Helper()
	res, err := a.StartAttest(b.Identity())
	w.dispatch(a, res, err)
	r1, err := a.RegisterPayoutKey(b.cfg.PayoutKey)
	w.dispatch(a, r1, err)
	r2, err := b.RegisterPayoutKey(a.cfg.PayoutKey)
	w.dispatch(b, r2, err)
	w.pump()
	if !a.SessionEstablished(b.Identity()) || !b.SessionEstablished(a.Identity()) {
		w.t.Fatal("attestation did not complete")
	}
}

// flushOnce drains at most one frame from e's replication log.
func (w *directWorld) flushOnce(e *Enclave, batch *wire.ReplBatch, maxOps, window int) int {
	w.t.Helper()
	to, msg, n := e.ReplNextFlush(batch, maxOps, window)
	if n == 0 {
		return 0
	}
	w.queue = append(w.queue, Outbound{To: to, Msg: msg})
	w.from = append(w.from, e.Identity())
	w.pump()
	return n
}

// settle flushes and pumps until both the network and e's replication
// log are fully drained.
func (w *directWorld) settle(e *Enclave) {
	w.t.Helper()
	var batch wire.ReplBatch
	for i := 0; i < 10_000; i++ {
		w.pump()
		if w.flushOnce(e, &batch, wire.MaxReplBatch, 1<<20) == 0 {
			return
		}
	}
	w.t.Fatal("replication log never drained")
}

// eventsOf drains and returns the recorded events for an enclave.
func (w *directWorld) eventsOf(e *Enclave) []Event {
	evs := w.events[e.Identity()]
	w.events[e.Identity()] = nil
	return evs
}

// pipeFund is the owner-side channel funding in pipelinedPair; larger
// than replMaxPending so the backlog test hits the log bound before the
// balance bound.
const pipeFund = chain.Amount(1 << 18)

// pipelinedPair builds owner (pipelined committee with member m1) and
// counterparty bob with a funded channel: owner side pipeFund.
func pipelinedPair(t *testing.T) (*directWorld, *Enclave, *Enclave, *Enclave, wire.ChannelID) {
	t.Helper()
	w := newDirectWorld(t)
	auth, err := tee.NewAuthority("repl-test")
	if err != nil {
		t.Fatal(err)
	}
	owner := w.enclave(auth, "owner")
	m1 := w.enclave(auth, "m1")
	bob := w.enclave(auth, "bob")
	w.connect(owner, m1)
	w.connect(owner, bob)

	owner.EnableReplPipeline(nil)
	res, err := owner.FormCommittee([]cryptoutil.PublicKey{m1.Identity()}, 2)
	w.dispatch(owner, res, err)
	w.pump()
	if !owner.CommitteeReady() {
		t.Fatal("committee never became ready")
	}
	if !owner.ReplPipelined() {
		t.Fatal("chain is not pipelined")
	}
	if !owner.LaneEligible() {
		t.Fatal("replicated pipelined enclave must stay lane eligible")
	}
	if !m1.LaneEligible() {
		t.Fatal("committee backup must stay lane eligible")
	}

	// Fund a channel owner->bob through the full approval dance; every
	// owner-side commit rides the pipelined log.
	id := wire.ChannelID("ch-repl")
	res, err = owner.OpenChannel(id, bob.Identity(), owner.cfg.PayoutKey.Address(), false)
	w.dispatch(owner, res, err)
	w.settle(owner)

	script, err := owner.NewDepositScript()
	if err != nil {
		t.Fatal(err)
	}
	point := chain.OutPoint{Tx: chain.TxID{0xd0}, Index: 0}
	res, err = owner.RegisterDeposit(owner.DepositInfoFor(point, pipeFund, script))
	w.dispatch(owner, res, err)
	w.settle(owner)
	res, err = owner.RequestDepositApproval(bob.Identity(), point)
	w.dispatch(owner, res, err)
	w.settle(owner)
	res, err = owner.AssociateDeposit(id, point)
	w.dispatch(owner, res, err)
	w.settle(owner)

	c := owner.State().Channels[id]
	if c == nil || !c.Open || c.MyBal != pipeFund {
		t.Fatalf("channel not funded: %+v", c)
	}
	return w, owner, m1, bob, id
}

func TestPipelinedPaymentsBatchAndReleaseInOrder(t *testing.T) {
	w, owner, m1, bob, id := pipelinedPair(t)

	// Issue 10 payments: commits succeed immediately, but nothing may
	// reach bob until the chain acknowledges.
	for i := 0; i < 10; i++ {
		res, err := owner.Pay(id, chain.Amount(i+1), 1)
		w.dispatch(owner, res, err)
	}
	w.pump()
	if got := bob.State().Channels[id].RemoteBal; got != pipeFund {
		t.Fatalf("bob saw balance movement before replication ack: %d", got)
	}
	st, _ := owner.ReplStats()
	if st.Queued != 10 {
		t.Fatalf("queued %d ops, want 10", st.Queued)
	}

	// One flush must carry all 10 ops in one batch and, after the
	// cumulative ack, release all 10 Pay messages in issue order.
	var batch wire.ReplBatch
	if n := w.flushOnce(owner, &batch, wire.MaxReplBatch, 1<<20); n != 10 {
		t.Fatalf("flushed %d ops, want 10", n)
	}
	if owner.State().Channels[id].MyBal != pipeFund-55 {
		t.Fatalf("owner balance %d", owner.State().Channels[id].MyBal)
	}
	if got := bob.State().Channels[id].MyBal; got != 55 {
		t.Fatalf("bob credited %d, want 55 after release", got)
	}
	mirror, ok := m1.MirrorState(owner.ChainID())
	if !ok {
		t.Fatal("no mirror")
	}
	if mc := mirror.Channels[id]; mc.MyBal != pipeFund-55 || mc.RemoteBal != 55 {
		t.Fatalf("mirror balances %d/%d", mc.MyBal, mc.RemoteBal)
	}
	st, _ = owner.ReplStats()
	if st.Queued != 0 || st.Window != 0 || st.AckSeq != st.NextSeq {
		t.Fatalf("log not drained: %+v", st)
	}
}

func TestPipelinedWindowBoundsFlushing(t *testing.T) {
	w, owner, _, _, id := pipelinedPair(t)
	for i := 0; i < 8; i++ {
		res, err := owner.Pay(id, 1, 1)
		w.dispatch(owner, res, err)
	}
	// A window of 4 admits one 4-op batch; with the ack not yet
	// processed the second flush must be held back.
	var batch wire.ReplBatch
	to, msg, n := owner.ReplNextFlush(&batch, 4, 4)
	if n != 4 {
		t.Fatalf("first flush %d ops, want 4", n)
	}
	if _, _, n2 := owner.ReplNextFlush(&batch, 4, 4); n2 != 0 {
		t.Fatalf("window-full flush returned %d ops, want 0", n2)
	}
	// Deliver the batch; the cumulative ack frees the window.
	w.queue = append(w.queue, Outbound{To: to, Msg: msg})
	w.from = append(w.from, owner.Identity())
	w.pump()
	if _, _, n3 := owner.ReplNextFlush(&batch, 4, 4); n3 != 4 {
		t.Fatalf("post-ack flush %d ops, want 4", n3)
	}
}

func TestReplRewindFlushReoffersOps(t *testing.T) {
	w, owner, _, _, id := pipelinedPair(t)
	for i := 0; i < 3; i++ {
		res, err := owner.Pay(id, chain.Amount(i+1), 1)
		w.dispatch(owner, res, err)
	}
	// Flush without delivering (the host's queue was full), rewind, and
	// flush again: the exact same run must be re-offered.
	var batch wire.ReplBatch
	_, _, n := owner.ReplNextFlush(&batch, wire.MaxReplBatch, 1<<20)
	if n != 3 {
		t.Fatalf("flushed %d ops, want 3", n)
	}
	first, ops := batch.FirstSeq, append([]wire.ReplBatchOp(nil), batch.Ops...)
	owner.ReplRewindFlush(n)
	to, msg, n2 := owner.ReplNextFlush(&batch, wire.MaxReplBatch, 1<<20)
	if n2 != 3 || batch.FirstSeq != first {
		t.Fatalf("re-flush: %d ops from seq %d, want 3 from %d", n2, batch.FirstSeq, first)
	}
	for i := range ops {
		if batch.Ops[i] != ops[i] {
			t.Fatalf("re-flushed op %d differs: %+v vs %+v", i, batch.Ops[i], ops[i])
		}
	}
	// Delivering the re-flushed batch completes the payments normally.
	w.queue = append(w.queue, Outbound{To: to, Msg: msg})
	w.from = append(w.from, owner.Identity())
	w.pump()
	st, _ := owner.ReplStats()
	if st.AckSeq != st.NextSeq {
		t.Fatalf("log not drained after re-flush: %+v", st)
	}
}

func TestPipelinedColdOpsFlushSolo(t *testing.T) {
	w, owner, _, bob, _ := pipelinedPair(t)
	// A second channel open is a cold (non-payment) op: it must flush as
	// a classic per-sequence ReplUpdate, not a batch.
	res, err := owner.OpenChannel("ch-2", bob.Identity(), owner.cfg.PayoutKey.Address(), false)
	w.dispatch(owner, res, err)
	var batch wire.ReplBatch
	_, msg, n := owner.ReplNextFlush(&batch, wire.MaxReplBatch, 1<<20)
	if n != 1 {
		t.Fatalf("cold flush %d ops, want 1", n)
	}
	if _, ok := msg.(*wire.ReplUpdate); !ok {
		t.Fatalf("cold op flushed as %T, want *wire.ReplUpdate", msg)
	}
}

func TestReplBatchDuplicateDroppedWithoutFreeze(t *testing.T) {
	w, owner, m1, _, id := pipelinedPair(t)
	for i := 0; i < 3; i++ {
		res, err := owner.Pay(id, 10, 1)
		w.dispatch(owner, res, err)
	}
	w.settle(owner)
	// Find the delivered batch and replay it: a redelivered frame after
	// a connection handover must be dropped, not applied, not frozen.
	var replayed *wire.ReplBatch
	for _, m := range w.replFrames {
		if b, ok := m.(*wire.ReplBatch); ok {
			replayed = b
		}
	}
	if replayed == nil {
		t.Fatal("no ReplBatch was delivered")
	}
	mirror, _ := m1.MirrorState(owner.ChainID())
	before := mirror.Channels[id].RemoteBal
	_, err := m1.HandleMessage(owner.Identity(), replayed)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("replayed batch: err=%v, want duplicate rejection", err)
	}
	if mirror.Frozen {
		t.Fatal("duplicate batch froze the chain")
	}
	if got := mirror.Channels[id].RemoteBal; got != before {
		t.Fatalf("duplicate batch moved mirror balance %d -> %d", before, got)
	}
}

// TestReplBatchGapNacksAndRecovers is the tentpole behavior change of
// self-healing replication: a lost batch no longer freezes the chain.
// The mirror buffers the ahead-of-sequence frame, NACKs the gap, the
// owner retransmits the missing range from its log (Retx-flagged), and
// the chain converges with no freeze and no lost payments.
func TestReplBatchGapNacksAndRecovers(t *testing.T) {
	w, owner, m1, _, id := pipelinedPair(t)
	base, _ := owner.ReplStats()
	for i := 0; i < 6; i++ {
		res, err := owner.Pay(id, 10, 1)
		w.dispatch(owner, res, err)
	}
	// Steal the first 3-op batch off the flush cursor (the frame is
	// "lost"), then deliver the second batch: the mirror sees a gap.
	var lost wire.ReplBatch
	if _, _, n := owner.ReplNextFlush(&lost, 3, 1<<20); n != 3 {
		t.Fatalf("stole %d ops, want 3", n)
	}
	var batch wire.ReplBatch
	if n := w.flushOnce(owner, &batch, 3, 1<<20); n != 3 {
		t.Fatalf("flushed %d ops, want 3", n)
	}
	// The gap must not have frozen anything; the NACK (delivered by the
	// pump) scheduled a retransmission the next flush serves.
	mirror, _ := m1.MirrorState(owner.ChainID())
	if mirror.Frozen || owner.State().Frozen {
		t.Fatal("sequence gap froze the chain")
	}
	st, _ := owner.ReplStats()
	if st.NacksIn == 0 {
		t.Fatalf("owner never saw the gap NACK: %+v", st)
	}
	w.settle(owner)
	st, _ = owner.ReplStats()
	if st.AckSeq != st.NextSeq {
		t.Fatalf("log never converged after retransmission: %+v", st)
	}
	if st.Retransmits < 3 {
		t.Fatalf("retransmitted %d ops, want >= 3", st.Retransmits)
	}
	if mc := mirror.Channels[id]; mc.MyBal != pipeFund-60 || mc.RemoteBal != 60 {
		t.Fatalf("mirror did not converge: %d/%d (acked from %d)", mc.MyBal, mc.RemoteBal, base.AckSeq)
	}
}

// TestReplReorderedBatchesDrainWithoutRetransmit pins the reorder
// buffer: two batches delivered out of order converge through the held
// buffer alone — the NACK's retransmission is never needed because the
// "missing" frame arrives right behind.
func TestReplReorderedBatchesDrainWithoutRetransmit(t *testing.T) {
	w, owner, m1, _, id := pipelinedPair(t)
	for i := 0; i < 6; i++ {
		res, err := owner.Pay(id, 5, 1)
		w.dispatch(owner, res, err)
	}
	var a, b wire.ReplBatch
	toA, _, n1 := owner.ReplNextFlush(&a, 3, 1<<20)
	if n1 != 3 {
		t.Fatalf("first flush %d, want 3", n1)
	}
	_, _, n2 := owner.ReplNextFlush(&b, 3, 1<<20)
	if n2 != 3 {
		t.Fatalf("second flush %d, want 3", n2)
	}
	// Deliver B before A (reordered link).
	w.queue = append(w.queue, Outbound{To: toA, Msg: &b})
	w.from = append(w.from, owner.Identity())
	w.pump()
	w.queue = append(w.queue, Outbound{To: toA, Msg: &a})
	w.from = append(w.from, owner.Identity())
	w.pump()
	mirror, _ := m1.MirrorState(owner.ChainID())
	if mirror.Frozen {
		t.Fatal("reordered delivery froze the chain")
	}
	st, _ := owner.ReplStats()
	if st.AckSeq != st.NextSeq {
		t.Fatalf("reordered batches never converged: %+v", st)
	}
	if st.Retransmits != 0 {
		t.Fatalf("in-window reorder retransmitted %d ops, want 0", st.Retransmits)
	}
	if mc := mirror.Channels[id]; mc.MyBal != pipeFund-30 || mc.RemoteBal != 30 {
		t.Fatalf("mirror balances %d/%d", mc.MyBal, mc.RemoteBal)
	}
}

// TestReplNackSuppression: redelivering the same ahead-of-sequence
// frame must not emit a NACK per arrival — only when the wanted
// sequence changes or the re-arm threshold hits.
func TestReplNackSuppression(t *testing.T) {
	w, owner, m1, _, id := pipelinedPair(t)
	for i := 0; i < 4; i++ {
		res, err := owner.Pay(id, 1, 1)
		w.dispatch(owner, res, err)
	}
	var lost, ahead wire.ReplBatch
	if _, _, n := owner.ReplNextFlush(&lost, 2, 1<<20); n != 2 {
		t.Fatal("steal failed")
	}
	if _, _, n := owner.ReplNextFlush(&ahead, 2, 1<<20); n != 2 {
		t.Fatal("flush failed")
	}
	res, err := m1.HandleMessage(owner.Identity(), &ahead)
	if err != nil {
		t.Fatalf("ahead-of-sequence frame: %v", err)
	}
	if got := len(res.Out); got != 1 {
		t.Fatalf("first gap emitted %d messages, want 1 NACK", got)
	}
	if _, ok := res.Out[0].Msg.(*wire.ReplNack); !ok {
		t.Fatalf("gap emitted %T, want *wire.ReplNack", res.Out[0].Msg)
	}
	// Same frame again: held already, same wanted seq — suppressed.
	res, err = m1.HandleMessage(owner.Identity(), &ahead)
	if err != nil {
		t.Fatalf("redelivered ahead frame: %v", err)
	}
	if len(res.Out) != 0 {
		t.Fatalf("suppressed redelivery still emitted %d messages", len(res.Out))
	}
}

// TestReplConflictingPayloadFreezes is the genuine-divergence guard:
// a frame overlapping already-applied sequences with a DIFFERENT
// payload is not message loss but state forking, and must freeze.
func TestReplConflictingPayloadFreezes(t *testing.T) {
	w, owner, m1, _, id := pipelinedPair(t)
	for i := 0; i < 3; i++ {
		res, err := owner.Pay(id, 10, 1)
		w.dispatch(owner, res, err)
	}
	w.settle(owner)
	st, _ := owner.ReplStats()
	// Overlap the last applied sequence with a different amount.
	forged := &wire.ReplBatch{
		Chain:    owner.ChainID(),
		FirstSeq: st.AckSeq,
		Retx:     true,
		Ops: []wire.ReplBatchOp{
			{Kind: wire.ReplOpPaySend, Channel: id, Amount: 999, Count: 1},
			{Kind: wire.ReplOpPaySend, Channel: id, Amount: 1, Count: 1},
		},
	}
	res, err := m1.HandleMessage(owner.Identity(), forged)
	if err != nil {
		t.Fatalf("conflicting batch returned transport error: %v", err)
	}
	frozen := false
	res.ForEachEvent(func(ev Event) {
		if _, ok := ev.(EvFrozen); ok {
			frozen = true
		}
	})
	if !frozen {
		t.Fatal("conflicting payload at a committed sequence did not freeze the chain")
	}
}

// TestReplRetxDuplicateRepairsLostAck: a Retx-flagged whole-duplicate
// batch means the primary never saw our ack — the mirror re-emits the
// cumulative ack instead of dropping the frame as noise.
func TestReplRetxDuplicateRepairsLostAck(t *testing.T) {
	w, owner, m1, _, id := pipelinedPair(t)
	for i := 0; i < 3; i++ {
		res, err := owner.Pay(id, 10, 1)
		w.dispatch(owner, res, err)
	}
	w.settle(owner)
	var replayed *wire.ReplBatch
	for _, m := range w.replFrames {
		if bb, ok := m.(*wire.ReplBatch); ok {
			replayed = bb
		}
	}
	if replayed == nil {
		t.Fatal("no ReplBatch was delivered")
	}
	cp := *replayed
	cp.Retx = true
	res, err := m1.HandleMessage(owner.Identity(), &cp)
	if err != nil {
		t.Fatalf("retx duplicate rejected: %v", err)
	}
	if len(res.Out) != 1 {
		t.Fatalf("retx duplicate emitted %d messages, want 1 ack", len(res.Out))
	}
	ack, ok := res.Out[0].Msg.(*wire.ReplBatchAck)
	if !ok {
		t.Fatalf("retx duplicate answered with %T, want *wire.ReplBatchAck", res.Out[0].Msg)
	}
	mirror, _ := m1.MirrorState(owner.ChainID())
	if mirror.Frozen {
		t.Fatal("retx duplicate froze the chain")
	}
	st, _ := owner.ReplStats()
	if ack.Seq != st.AckSeq {
		t.Fatalf("repair ack covers %d, mirror has %d", ack.Seq, st.AckSeq)
	}
}

// TestReplCumulativeAckClampsAtPendingTau: a cumulative ReplBatchAck
// that overtakes a lost per-sequence ReplAck must not release a
// sign-stage entry whose committee τ signatures are still unfolded —
// the ack cursor clamps there until the per-seq ack (recovered by
// retransmission in production) delivers the signatures.
func TestReplCumulativeAckClampsAtPendingTau(t *testing.T) {
	w, owner, m1, _, id := pipelinedPair(t)
	for i := 0; i < 4; i++ {
		res, err := owner.Pay(id, 1, 1)
		w.dispatch(owner, res, err)
	}
	l := owner.repl.log
	l.mu.Lock()
	clampSeq := l.ackSeq + 2
	l.entryAtLocked(clampSeq).tauPending = true
	l.mu.Unlock()
	var batch wire.ReplBatch
	if _, _, n := owner.ReplNextFlush(&batch, wire.MaxReplBatch, 1<<20); n != 4 {
		t.Fatalf("flushed %d ops, want 4", n)
	}
	st, _ := owner.ReplStats()
	res, err := owner.HandleMessage(m1.Identity(), &wire.ReplBatchAck{Chain: owner.ChainID(), Seq: st.FlushSeq})
	w.dispatch(owner, res, err)
	st, _ = owner.ReplStats()
	if st.AckSeq != clampSeq-1 {
		t.Fatalf("cumulative ack released past the pending-τ entry: ackSeq %d, want %d", st.AckSeq, clampSeq-1)
	}
	// The recovered per-sequence ack folds the (empty) signature set and
	// unclamps; the cursor resumes to the recorded cumulative high mark.
	res, err = owner.HandleMessage(m1.Identity(), &wire.ReplAck{Chain: owner.ChainID(), Seq: clampSeq})
	w.dispatch(owner, res, err)
	w.pump()
	st, _ = owner.ReplStats()
	if st.AckSeq != st.FlushSeq {
		t.Fatalf("per-seq ack did not resume the cursor: %+v", st)
	}
}

func TestReplBatchForgedOpsFreeze(t *testing.T) {
	for _, tc := range []struct {
		name string
		op   wire.ReplBatchOp
	}{
		{"negative amount", wire.ReplBatchOp{Kind: wire.ReplOpPayRecv, Channel: "ch-repl", Amount: -5, Count: 1}},
		{"zero amount", wire.ReplBatchOp{Kind: wire.ReplOpPaySend, Channel: "ch-repl", Amount: 0, Count: 1}},
		{"overflow amount", wire.ReplBatchOp{Kind: wire.ReplOpPaySend, Channel: "ch-repl", Amount: math.MaxInt64, Count: 1}},
		{"bad kind", wire.ReplBatchOp{Kind: 77, Channel: "ch-repl", Amount: 1, Count: 1}},
		{"bad count", wire.ReplBatchOp{Kind: wire.ReplOpPaySend, Channel: "ch-repl", Amount: 1, Count: 0}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, owner, m1, _, _ := pipelinedPair(t)
			st, _ := owner.ReplStats()
			forged := &wire.ReplBatch{
				Chain:    owner.ChainID(),
				FirstSeq: st.AckSeq + 1,
				Ops:      []wire.ReplBatchOp{tc.op},
			}
			res, err := m1.HandleMessage(owner.Identity(), forged)
			if err != nil {
				t.Fatalf("forged batch returned transport error: %v", err)
			}
			frozen := false
			res.ForEachEvent(func(ev Event) {
				if _, ok := ev.(EvFrozen); ok {
					frozen = true
				}
			})
			if !frozen {
				t.Fatal("forged batch op did not freeze the chain")
			}
			mirror, _ := m1.MirrorState(owner.ChainID())
			if mc := mirror.Channels["ch-repl"]; mc.MyBal+mc.RemoteBal != pipeFund {
				t.Fatalf("forged op corrupted mirror: %d/%d", mc.MyBal, mc.RemoteBal)
			}
		})
	}
}

func TestReplBatchAckHardening(t *testing.T) {
	w, owner, m1, _, id := pipelinedPair(t)
	for i := 0; i < 4; i++ {
		res, err := owner.Pay(id, 1, 1)
		w.dispatch(owner, res, err)
	}
	var batch wire.ReplBatch
	to, msg, n := owner.ReplNextFlush(&batch, 2, 1<<20)
	if n != 2 {
		t.Fatalf("flushed %d, want 2", n)
	}
	st, _ := owner.ReplStats()

	// A forged ack beyond what was flushed must not release anything.
	if _, err := owner.HandleMessage(m1.Identity(), &wire.ReplBatchAck{Chain: owner.ChainID(), Seq: st.FlushSeq + 2}); err == nil {
		t.Fatal("accepted cumulative ack beyond the flushed window")
	}
	// A stale (already-acknowledged) ack is rejected too.
	if _, err := owner.HandleMessage(m1.Identity(), &wire.ReplBatchAck{Chain: owner.ChainID(), Seq: st.AckSeq}); err == nil {
		t.Fatal("accepted stale cumulative ack")
	}
	// Deliver the real batch; the genuine cumulative ack still works.
	w.queue = append(w.queue, Outbound{To: to, Msg: msg})
	w.from = append(w.from, owner.Identity())
	w.pump()
	st2, _ := owner.ReplStats()
	if st2.AckSeq != st.FlushSeq {
		t.Fatalf("genuine ack did not advance: %+v", st2)
	}
}

func TestReplUpdateDuplicateDroppedWithoutFreeze(t *testing.T) {
	w, owner, m1, bob, _ := pipelinedPair(t)
	// Cold op -> solo ReplUpdate; replaying it must be dropped, not
	// frozen (exactly-next discipline with redelivery tolerance).
	res, err := owner.OpenChannel("ch-dup", bob.Identity(), owner.cfg.PayoutKey.Address(), false)
	w.dispatch(owner, res, err)
	w.settle(owner)
	var update *wire.ReplUpdate
	for _, m := range w.replFrames {
		if u, ok := m.(*wire.ReplUpdate); ok {
			update = u
		}
	}
	if update == nil {
		t.Fatal("no solo ReplUpdate was delivered")
	}
	if _, err := m1.HandleMessage(owner.Identity(), update); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("replayed update: err=%v, want duplicate rejection", err)
	}
	mirror, _ := m1.MirrorState(owner.ChainID())
	if mirror.Frozen {
		t.Fatal("duplicate update froze the chain")
	}
}

func TestPipelinedBacklogBoundsCommits(t *testing.T) {
	w, owner, _, _, id := pipelinedPair(t)
	// Fill the backlog without ever flushing: commits must eventually be
	// refused instead of growing the log without bound. Payments of the
	// minimum amount keep the channel solvent throughout.
	var refused error
	for i := 0; i < replMaxPending+10; i++ {
		res, err := owner.Pay(id, 1, 1)
		if err != nil {
			refused = err
			break
		}
		w.dispatch(owner, res, nil)
	}
	if refused == nil {
		t.Fatal("backlog never refused a commit")
	}
	if !strings.Contains(refused.Error(), "backlog") {
		t.Fatalf("unexpected refusal: %v", refused)
	}
}
