// Durable enclave state (§6.2, the real one): a group-committed
// write-ahead log riding the commit pipeline, periodic sealed snapshots
// with rollback protection, and crash recovery.
//
// The WAL is not a separate stream: replicated commits already append
// every op with its withheld effects to the chain's log (repl.go), so a
// durable enclave reuses that exact sequence. The log gains a second
// consumer cursor — syncSeq, advanced by the host's WAL flusher after
// each batched fsync — and an entry's externally visible effects
// release only once every enabled cursor (replication ack, WAL fsync)
// has passed it. That is the paper's commit-before-ack ordering for
// stable storage, enforced by the group-commit barrier instead of a
// per-op counter increment, which is what recovers line-rate
// throughput (Table 1 shows ~10 tx/s without batching).
//
// Snapshots are themselves group commits: SnapshotSealed captures the
// full durable image (identity, state, keys, committee configuration)
// under one monotonic-counter increment (tee.SealStateWithCounter), the
// host persists it and truncates the WAL, and WalSynced(nextSeq)
// releases everything the snapshot covers. WAL records seal under the
// plain measurement key but bind the snapshot's counter value (their
// generation), so a record from before the last snapshot — or from a
// rolled-back snapshot — never replays.
//
// Recovery: RestoreDurable unseals the snapshot (refusing with
// tee.ErrRolledBack when the hardware counter says it is stale),
// rebuilds the enclave around it, then WalReplayRecord applies each
// surviving WAL record — discarding the effects, which were withheld at
// commit time and are reconstructed by the resume protocol
// (ChanResume / ReplResyncStart).
package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"

	"teechain/internal/chain"
	"teechain/internal/cryptoutil"
	"teechain/internal/tee"
	"teechain/internal/wire"
)

// walState is the durability bookkeeping of a durable enclave. The log
// is shared with the replication chain once a committee forms
// (FormCommittee adopts it), so both cursors run over one sequence.
type walState struct {
	// log carries committed ops and their withheld effects; durable
	// releases gate on its syncSeq cursor.
	log *replLog
	// pendingKeys are blockchain keys minted since the last WAL record
	// or snapshot; they must reach stable storage with (or before) the
	// ops referencing their addresses. Guarded by log.mu.
	pendingKeys []*cryptoutil.KeyPair
	// gen is the current snapshot generation — the monotonic counter
	// value sealed into the live snapshot. WAL records bind to it so
	// stale records never replay. Guarded by log.mu (the WAL flusher
	// reads it while SnapshotSealed rewrites it).
	gen uint64
	// scratch is the record-plaintext build buffer; only the single WAL
	// flusher goroutine touches it.
	scratch []byte
}

// EnableDurable switches this enclave into durable (WAL) mode: commits
// append to a pipelined log whose effects release only after the host's
// WAL flusher (woken by notify) reports them fsynced via WalSynced.
// Must be called under the host's wide lock before any commit, and
// before FormCommittee (which adopts the WAL log for replication).
func (e *Enclave) EnableDurable(notify func()) {
	e.wal = &walState{log: &replLog{pipelined: true, durable: true, notify: notify}}
}

// Durable reports whether the enclave runs in durable (WAL) mode.
func (e *Enclave) Durable() bool { return e.wal != nil }

// WalCursors snapshots the durable log's sequence cursors: committed,
// handed to the WAL flusher, and fsynced.
func (e *Enclave) WalCursors() (next, flushed, synced uint64) {
	l := e.wal.log
	l.mu.Lock()
	next, flushed, synced = l.nextSeq, l.walSeq, l.syncSeq
	l.mu.Unlock()
	return next, flushed, synced
}

// --- WAL record codec ---
//
// Record plaintext (sealed under the enclave measurement key):
//
//	offset  field
//	0       u64 generation (snapshot counter value the record follows)
//	8       u64 firstSeq (sequence of the first op)
//	16      u32 opCount
//	20      u16 keyCount
//	22      keyCount × 32-byte blockchain private key scalars
//	…       opCount × op records:
//	          u8 kind — wire.ReplOp* for hot payment ops, 0 for cold
//	          hot:  LP channel id ‖ u64 amount ‖ u32 count
//	          cold: u32 length ‖ gob(*Op)
//
// Hot payment ops reuse the ReplBatch binary shapes (PR 4); everything
// else gobs, exactly mirroring the replication stream's split.

const walRecordHdr = 8 + 8 + 4 + 2

// WalNextFlush hands the host's WAL flusher its next sealed record:
// every op committed past the WAL cursor (bounded by maxOps) plus every
// pending blockchain key, serialized under the log mutex and sealed
// outside it. Returns n == 0 when nothing needs writing. lastSeq is the
// cursor after this record — the value to pass to WalSynced once the
// record is fsynced. Caller holds the wide lock in read mode; the
// single flusher goroutine is the only caller, so the scratch buffer
// and the walSeq cursor cannot race with themselves.
func (e *Enclave) WalNextFlush(maxOps int) (sealed []byte, lastSeq uint64, n int, err error) {
	w := e.wal
	l := w.log
	l.mu.Lock()
	if l.walSeq >= l.nextSeq && len(w.pendingKeys) == 0 {
		lastSeq = l.walSeq
		l.mu.Unlock()
		return nil, lastSeq, 0, nil
	}
	firstSeq := l.walSeq + 1
	end := l.nextSeq
	if max := l.walSeq + uint64(maxOps); end > max {
		end = max
	}
	buf := w.scratch[:0]
	buf = binary.BigEndian.AppendUint64(buf, w.gen)
	buf = binary.BigEndian.AppendUint64(buf, firstSeq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(end-l.walSeq))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(w.pendingKeys)))
	for _, kp := range w.pendingKeys {
		buf = append(buf, kp.PrivateBytes()...)
	}
	w.pendingKeys = w.pendingKeys[:0]
	for seq := firstSeq; seq <= end; seq++ {
		ent := l.entryAtLocked(seq)
		op := ent.op
		if kind := replBatchKind(op.Kind); kind != 0 {
			buf = append(buf, kind)
			if buf, err = wire.AppendLPChannelID(buf, op.Channel); err != nil {
				break
			}
			buf = binary.BigEndian.AppendUint64(buf, uint64(op.Amount))
			buf = binary.BigEndian.AppendUint32(buf, uint32(op.Count))
			continue
		}
		buf = append(buf, 0)
		var gobBuf bytes.Buffer
		if err = gob.NewEncoder(&gobBuf).Encode(op); err != nil {
			err = fmt.Errorf("core: encoding WAL op %v: %w", op.Kind, err)
			break
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(gobBuf.Len()))
		buf = append(buf, gobBuf.Bytes()...)
	}
	w.scratch = buf
	if err != nil {
		l.mu.Unlock()
		return nil, 0, 0, err
	}
	n = int(end - firstSeq + 1)
	l.walSeq = end
	lastSeq = end
	l.mu.Unlock()

	// Seal outside the log mutex: Platform.Seal is stateless, and the
	// wide read lock the caller holds already excludes snapshots.
	sealed, err = e.platform.Seal(e.measurement, buf)
	if err != nil {
		return nil, 0, 0, err
	}
	if n == 0 {
		n = 1 // key-only record: still one frame to write
	}
	return sealed, lastSeq, n, nil
}

// WalSynced advances the fsync cursor after the host's WAL flusher
// persisted the record ending at seq, and releases every entry all
// enabled cursors have passed. The returned Result carries the released
// withheld effects (possibly none); the host dispatches it under the
// wide write lock it already holds.
func (e *Enclave) WalSynced(seq uint64) *Result {
	l := e.wal.log
	l.mu.Lock()
	if seq > l.syncSeq {
		l.syncSeq = seq
	}
	replicated := false
	if e.repl != nil {
		_, replicated = e.repl.backup()
	}
	target := l.releaseTargetLocked(replicated)
	l.mu.Unlock()
	res := e.pools.getResult()
	e.releaseTo(l, target, res)
	return res
}

// --- Snapshots ---

// durableImage is everything a durable enclave needs to resurrect
// itself: identity, logical state, blockchain keys, and committee
// configuration. Sealed via tee.SealStateWithCounter so a stale image
// refuses to load (tee.ErrRolledBack).
type durableImage struct {
	Identity []byte // enclave identity private scalar
	KeySeq   uint64
	Seq      uint64 // log cursor the snapshot covers
	State    *State
	BtcKeys  map[cryptoutil.Address][]byte

	HasRepl       bool
	ChainID       string
	Members       []cryptoutil.PublicKey
	M             int
	MemberBtcKeys map[cryptoutil.PublicKey]cryptoutil.PublicKey
	Ready         bool
}

// SnapshotSealed captures the complete durable image at the committed
// frontier and seals it under a fresh monotonic-counter increment. The
// WAL cursor jumps to the frontier (ops the snapshot covers never need
// WAL records) and pending keys drain into the image. The host persists
// the blob, truncates the WAL, then calls WalSynced(seq) — the snapshot
// IS the group commit for everything it covers. Caller holds the wide
// write lock (no concurrent commits) and charges
// tee.CounterIncrementLatency outside it.
func (e *Enclave) SnapshotSealed() (blob []byte, seq uint64, err error) {
	w := e.wal
	l := w.log
	l.mu.Lock()
	seq = l.nextSeq
	l.walSeq = seq
	w.pendingKeys = w.pendingKeys[:0]
	l.mu.Unlock()

	img := durableImage{
		Identity: e.identity.PrivateBytes(),
		KeySeq:   e.keySeq,
		Seq:      seq,
		State:    e.state,
		BtcKeys:  make(map[cryptoutil.Address][]byte, len(e.btcKeys)),
	}
	for addr, kp := range e.btcKeys {
		img.BtcKeys[addr] = kp.PrivateBytes()
	}
	if e.repl != nil {
		img.HasRepl = true
		img.ChainID = e.repl.chainID
		img.Members = e.repl.members
		img.M = e.repl.m
		img.MemberBtcKeys = e.repl.memberBtcKeys
		img.Ready = e.repl.ready
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&img); err != nil {
		return nil, 0, fmt.Errorf("core: encoding durable image: %w", err)
	}
	blob, err = tee.SealStateWithCounter(e.platform, e.measurement, e.counterName, buf.Bytes())
	if err != nil {
		return nil, 0, err
	}
	gen := e.platform.ReadCounter(e.counterName)
	l.mu.Lock()
	w.gen = gen
	l.mu.Unlock()
	return blob, seq, nil
}

// --- Recovery ---

// RestoreDurable rebuilds the enclave from a sealed snapshot produced
// by SnapshotSealed, returning the log cursor it covers. A stale
// snapshot fails with tee.ErrRolledBack — the enclave refuses to start
// rather than resurrect spent balances. The identity, state, keys, and
// committee-primary configuration are replaced wholesale; the log
// restarts with every cursor at the snapshot's sequence. Call before
// any other use of the enclave (the host does this inside NewHost).
func (e *Enclave) RestoreDurable(blob []byte, notify func()) (uint64, error) {
	plain, err := tee.UnsealStateWithCounter(e.platform, e.measurement, e.counterName, blob)
	if err != nil {
		return 0, err
	}
	var img durableImage
	if err := gob.NewDecoder(bytes.NewReader(plain)).Decode(&img); err != nil {
		return 0, fmt.Errorf("core: decoding durable image: %w", err)
	}
	identity, err := cryptoutil.KeyPairFromPrivateBytes(img.Identity)
	if err != nil {
		return 0, fmt.Errorf("core: restoring enclave identity: %w", err)
	}
	if img.State == nil || img.State.Owner != identity.Public() {
		return 0, errors.New("core: durable image state does not match its identity")
	}
	e.identity = identity
	e.state = img.State
	// Every open channel reconciles with its peer before carrying new
	// payments again (see ChannelState.Resuming).
	for _, c := range e.state.Channels {
		if c.Open && !c.Closed {
			c.Resuming = true
		}
	}
	e.keySeq = img.KeySeq
	e.btcKeys = make(map[cryptoutil.Address]*cryptoutil.KeyPair, len(img.BtcKeys))
	for addr, priv := range img.BtcKeys {
		kp, err := cryptoutil.KeyPairFromPrivateBytes(priv)
		if err != nil {
			return 0, fmt.Errorf("core: restoring blockchain key %s: %w", addr, err)
		}
		if kp.Address() != addr {
			return 0, fmt.Errorf("core: blockchain key does not match address %s", addr)
		}
		e.btcKeys[addr] = kp
	}
	l := &replLog{pipelined: true, durable: true, notify: notify}
	l.nextSeq, l.flushSeq, l.ackSeq = img.Seq, img.Seq, img.Seq
	l.walSeq, l.syncSeq, l.relSeq = img.Seq, img.Seq, img.Seq
	e.wal = &walState{log: l, gen: e.platform.ReadCounter(e.counterName)}
	if img.HasRepl {
		e.repl = &replPrimary{
			chainID:       img.ChainID,
			members:       img.Members,
			m:             img.M,
			memberBtcKeys: img.MemberBtcKeys,
			ready:         img.Ready,
			log:           l,
		}
	}
	return img.Seq, nil
}

// WalReplayRecord unseals and applies one WAL record during recovery,
// returning how many ops it applied. Records from an older snapshot
// generation, or wholly covered by the snapshot, skip with n == 0 (the
// WAL-truncation race after a snapshot leaves such records behind
// legally). A record that fails to unseal or parse is the torn tail of
// an interrupted write: the caller stops replay there. Ops apply to the
// state with their effects DISCARDED — they were withheld at commit
// time precisely so that a crash-recovered enclave could replay without
// re-emitting them; the resume protocol reconciles anything a peer
// already saw.
func (e *Enclave) WalReplayRecord(sealed []byte) (int, error) {
	w := e.wal
	l := w.log
	plain, err := e.platform.Unseal(e.measurement, sealed)
	if err != nil {
		return 0, fmt.Errorf("core: unsealing WAL record: %w", err)
	}
	if len(plain) < walRecordHdr {
		return 0, errors.New("core: WAL record truncated")
	}
	gen := binary.BigEndian.Uint64(plain[0:8])
	firstSeq := binary.BigEndian.Uint64(plain[8:16])
	opCount := int(binary.BigEndian.Uint32(plain[16:20]))
	keyCount := int(binary.BigEndian.Uint16(plain[20:22]))
	if gen < w.gen {
		return 0, nil // pre-snapshot leftovers; the snapshot covers them
	}
	if gen > w.gen {
		return 0, fmt.Errorf("core: WAL record from future generation %d (snapshot %d)", gen, w.gen)
	}
	lastSeq := firstSeq + uint64(opCount) - 1
	if opCount > 0 && lastSeq <= l.nextSeq {
		return 0, nil // wholly covered by the snapshot
	}
	if opCount > 0 && firstSeq != l.nextSeq+1 {
		return 0, fmt.Errorf("core: WAL record sequence gap: got %d, want %d", firstSeq, l.nextSeq+1)
	}
	rest := plain[walRecordHdr:]
	for i := 0; i < keyCount; i++ {
		if len(rest) < 32 {
			return 0, errors.New("core: WAL record truncated in keys")
		}
		kp, err := cryptoutil.KeyPairFromPrivateBytes(rest[:32])
		if err != nil {
			return 0, fmt.Errorf("core: WAL key replay: %w", err)
		}
		e.btcKeys[kp.Address()] = kp
		e.keySeq++
		rest = rest[32:]
	}
	applied := 0
	for i := 0; i < opCount; i++ {
		if len(rest) < 1 {
			return applied, errors.New("core: WAL record truncated in ops")
		}
		kindCode := rest[0]
		rest = rest[1:]
		op := &Op{}
		if kindCode != 0 {
			kind, ok := replOpKind(kindCode)
			if !ok {
				return applied, fmt.Errorf("core: WAL record has unknown op kind %d", kindCode)
			}
			ch, r2, err := wire.ReadLPChannelID(rest, "")
			if err != nil {
				return applied, fmt.Errorf("core: WAL hot op: %w", err)
			}
			if len(r2) < 12 {
				return applied, errors.New("core: WAL record truncated in hot op")
			}
			op.Kind = kind
			op.Channel = ch
			op.Amount = chain.Amount(binary.BigEndian.Uint64(r2[:8]))
			op.Count = int(int32(binary.BigEndian.Uint32(r2[8:12])))
			rest = r2[12:]
		} else {
			if len(rest) < 4 {
				return applied, errors.New("core: WAL record truncated in cold op")
			}
			glen := int(binary.BigEndian.Uint32(rest[:4]))
			if len(rest) < 4+glen {
				return applied, errors.New("core: WAL record truncated in cold op body")
			}
			if err := gob.NewDecoder(bytes.NewReader(rest[4 : 4+glen])).Decode(op); err != nil {
				return applied, fmt.Errorf("core: WAL cold op decode: %w", err)
			}
			rest = rest[4+glen:]
		}
		if err := e.state.Apply(op); err != nil {
			return applied, fmt.Errorf("core: WAL replay apply seq %d (%v): %w", firstSeq+uint64(i), op.Kind, err)
		}
		applied++
		l.nextSeq++
		l.flushSeq, l.ackSeq = l.nextSeq, l.nextSeq
		l.walSeq, l.syncSeq, l.relSeq = l.nextSeq, l.nextSeq, l.nextSeq
	}
	if len(rest) != 0 {
		return applied, errors.New("core: WAL record has trailing bytes")
	}
	return applied, nil
}

// CommitteeMembers returns the members of the committee chain this
// enclave owns (nil when it owns none) — the peers a recovered host
// must re-attest and resync before replication resumes.
func (e *Enclave) CommitteeMembers() []cryptoutil.PublicKey {
	if e.repl == nil {
		return nil
	}
	return e.repl.members
}

// --- Channel resume (post-recovery reconciliation) ---

// ChanResumeStart opens reconciliation of one channel after this
// enclave crash-recovered: it announces our durable cumulative receipt
// totals so the peer can revert optimistic debits we never durably saw.
// EvChannelResumed fires when the peer's ack closes the exchange.
func (e *Enclave) ChanResumeStart(ch wire.ChannelID) (*Result, error) {
	if e.state.Frozen {
		return nil, ErrFrozen
	}
	c, err := e.state.channel(ch)
	if err != nil {
		return nil, err
	}
	if _, err := e.session(c.Remote); err != nil {
		return nil, err
	}
	return &Result{Out: oneOut(c.Remote, &wire.ChanResume{
		Channel: ch, RecvAmt: c.RecvAmt, RecvCnt: c.RecvCnt,
	})}, nil
}

// handleChanResume is the surviving peer's half: compare the recovering
// sender's durable receipts against our cumulative sends and revert the
// excess — payments we debited optimistically whose Pay frames the
// sender never durably received. Group commit orders fsync before the
// Pay frame departs, so our receipts can never exceed the recovering
// peer's durable sends; the converse holds in handleChanResumeAck.
func (e *Enclave) handleChanResume(from cryptoutil.PublicKey, m *wire.ChanResume) (*Result, error) {
	c, err := e.state.channel(m.Channel)
	if err != nil {
		return nil, err
	}
	if c.Remote != from {
		return nil, fmt.Errorf("core: channel %s does not belong to %s", m.Channel, from)
	}
	ack := &wire.ChanResumeAck{Channel: m.Channel, RecvAmt: c.RecvAmt, RecvCnt: c.RecvCnt}
	c.Resuming = false // reconciliation is here; our side is unblocked below
	if c.Closed || !c.Open || c.Stage != MhIdle {
		// No payment flow to reconcile on a channel that cannot carry
		// payments right now; just report our receipts.
		return e.deferBehindPending(from, ack), nil
	}
	if c.SentAmt < m.RecvAmt || c.SentCnt < m.RecvCnt {
		return nil, fmt.Errorf("core: resume on %s claims %d received beyond %d sent",
			m.Channel, m.RecvAmt, c.SentAmt)
	}
	exAmt := c.SentAmt - m.RecvAmt
	exCnt := c.SentCnt - m.RecvCnt
	if exAmt == 0 && exCnt == 0 {
		return e.deferBehindPending(from, ack), nil
	}
	if exAmt == 0 || exCnt == 0 {
		return nil, fmt.Errorf("core: inconsistent resume excess on %s: %d over %d payments",
			m.Channel, exAmt, exCnt)
	}
	// The revert and the ack commit together: the ack rides as the
	// revert's withheld effect, so the recovering peer sees our totals
	// only after the revert is replicated/durable on our side.
	op := &Op{Kind: OpPayRevert, Channel: m.Channel, Amount: exAmt, Count: int(exCnt)}
	return e.commit(op,
		[]Outbound{{To: from, Msg: ack}},
		[]Event{EvPayNacked{Channel: m.Channel, Amount: exAmt, Count: int(exCnt), Reason: "peer recovered"}})
}

// handleChanResumeAck is the recovering side's half: revert our own
// optimistic debits the peer never received, then mark the channel
// resumed.
func (e *Enclave) handleChanResumeAck(from cryptoutil.PublicKey, m *wire.ChanResumeAck) (*Result, error) {
	c, err := e.state.channel(m.Channel)
	if err != nil {
		return nil, err
	}
	if c.Remote != from {
		return nil, fmt.Errorf("core: channel %s does not belong to %s", m.Channel, from)
	}
	resumed := Event(EvChannelResumed{Channel: m.Channel})
	c.Resuming = false
	if c.Closed || !c.Open || c.Stage != MhIdle {
		return &Result{Events: []Event{resumed}}, nil
	}
	if c.SentAmt < m.RecvAmt || c.SentCnt < m.RecvCnt {
		return nil, fmt.Errorf("core: resume ack on %s claims %d received beyond %d sent",
			m.Channel, m.RecvAmt, c.SentAmt)
	}
	exAmt := c.SentAmt - m.RecvAmt
	exCnt := c.SentCnt - m.RecvCnt
	if exAmt == 0 && exCnt == 0 {
		return &Result{Events: []Event{resumed}}, nil
	}
	if exAmt == 0 || exCnt == 0 {
		return nil, fmt.Errorf("core: inconsistent resume-ack excess on %s: %d over %d payments",
			m.Channel, exAmt, exCnt)
	}
	op := &Op{Kind: OpPayRevert, Channel: m.Channel, Amount: exAmt, Count: int(exCnt)}
	return e.commit(op, nil, []Event{
		EvPayNacked{Channel: m.Channel, Amount: exAmt, Count: int(exCnt), Reason: "lost in crash"},
		resumed,
	})
}
