package core

import (
	"time"

	"teechain/internal/tee"
	"teechain/internal/wire"
)

// Processing-cost calibration.
//
// The discrete-event simulator reproduces the *shape* of the paper's
// results from protocol structure (message counts, replication round
// trips, lock contention). Absolute scale comes from this table, which
// is calibrated once against two measurements from the paper — the
// single-channel no-fault-tolerance row of Table 1 (130,311 tx/s,
// 86 ms) and the channel-creation row of Table 2 (2.81 s) — and then
// held fixed for every experiment. See DESIGN.md §5 and EXPERIMENTS.md.
const (
	// CostPayBase is the fixed enclave cost of handling one payment
	// message (session authentication, bookkeeping).
	CostPayBase = 1200 * time.Nanosecond
	// CostPayPerPayment is the per-logical-payment cost inside a
	// message; with client-side batching many logical payments share
	// one CostPayBase. 1/(base+per) ≈ 130 k tx/s unbatched, ≈ 150 k
	// batched (Table 1).
	CostPayPerPayment = 6500 * time.Nanosecond

	// CostReplBase is the fixed cost of applying a replication update
	// at a committee member; CostReplPerPayment the per-payment part.
	// 1/(base+per) ≈ 34 k tx/s unbatched (Table 1, one replica).
	CostReplBase       = 22 * time.Microsecond
	CostReplPerPayment = 7300 * time.Nanosecond

	// CostAttestVerify is the cost of verifying a remote attestation
	// quote (the paper's deployment contacts Intel's attestation
	// service). Two mutual verifications plus a round trip yield the
	// ~2.8 s channel/replica creation of Table 2.
	CostAttestVerify = 1300 * time.Millisecond

	// CostDepositOp covers the enclave-side work of deposit
	// association/dissociation (ECDSA over the deposit key material).
	CostDepositOp = 5 * time.Millisecond

	// CostMhStageCPU is the processor cost of one multi-hop stage
	// message (τ bookkeeping, threshold-signature assembly).
	CostMhStageCPU = 2 * time.Millisecond
	// CostMhStageDelay is the per-stage pipeline stall: τ
	// construction/verification with side-channel-hardened ECDSA and
	// the off-chain synchronisation Teechain adds for asynchronous
	// blockchain access (§7.3). It delays the stage without occupying
	// the processor, so concurrent payments through a hub overlap — the
	// only reading consistent with both Fig. 4's multi-second path
	// latencies and Table 3's hundreds of payments per second through
	// three hub machines.
	CostMhStageDelay = 150 * time.Millisecond

	// CostCounterIncrement re-exports the hardware monotonic counter
	// latency used by the stable-storage configuration (§6.2).
	CostCounterIncrement = tee.CounterIncrementLatency

	// CostSigRequest is the committee-side cost of validating and
	// countersigning a settlement transaction.
	CostSigRequest = 2 * time.Millisecond

	// CostSettleBuild is the enclave cost of constructing and signing a
	// settlement transaction.
	CostSettleBuild = 3 * time.Millisecond
)

// DefaultBatchWindow is the client-side batching window used by the
// evaluation (§7.2): payments are merged for 100 ms before one message
// is sent.
const DefaultBatchWindow = 100 * time.Millisecond

// CostModel returns the (cpu, delay) a message imposes on the receiving
// enclave's host, given the node's fault-tolerance configuration. CPU
// occupies the serial processor (throughput ceilings); delay postpones
// delivery without occupying it (pipeline stalls that overlap across
// payments). Stable storage adds one monotonic counter increment to
// every state-changing message (§6.2).
func CostModel(stableStorage bool) func(payload any) (cpu, delay time.Duration) {
	return func(payload any) (time.Duration, time.Duration) {
		var cpu, delay time.Duration
		switch m := payload.(type) {
		case *wire.Pay:
			cpu = CostPayBase + time.Duration(max(1, m.Count))*CostPayPerPayment
		case *wire.PayBatch:
			cpu = CostPayBase + time.Duration(max(1, len(m.Amounts)))*CostPayPerPayment
		case *wire.PayAck, *wire.PayNack, *wire.PayBatchAck:
			cpu = CostPayBase
		case *wire.ReplUpdate:
			cpu = CostReplBase
			if op, ok := m.Op.(*Op); ok {
				switch op.Kind {
				case OpPaySend, OpPayRecv:
					cpu += time.Duration(max(1, op.Count)) * CostReplPerPayment
				case OpMhStage, OpMhStart, OpMhFinish:
					// Committee members verify τ and contribute
					// threshold signatures during stage replication
					// (§6.1): a pipeline stall like the stage itself.
					cpu += CostSigRequest
					delay = CostMhStageDelay / 2
				}
			}
		case *wire.ReplAck:
			cpu = CostPayBase
		case *wire.Attest:
			cpu = CostAttestVerify
		case *wire.ChannelOpen, *wire.ChannelAck:
			cpu = CostDepositOp
		case *wire.ApproveDeposit, *wire.ApprovedDeposit,
			*wire.AssociateDeposit, *wire.DissociateDeposit, *wire.DissociateAck:
			cpu = CostDepositOp
		case *wire.MhLock, *wire.MhSign, *wire.MhPreUpdate,
			*wire.MhUpdate, *wire.MhPostUpdate, *wire.MhRelease:
			cpu = CostMhStageCPU
			delay = CostMhStageDelay
		case *wire.SigRequest:
			cpu = CostSigRequest
		case *wire.SigResponse:
			cpu = CostPayBase
		case *wire.SettleRequest, *wire.SettleNotify:
			cpu = CostSettleBuild
		case *wire.OutsourceCmd, *wire.OutsourceResult:
			cpu = CostPayBase
		default:
			cpu = CostPayBase
		}
		if stableStorage && stateChanging(payload) {
			// The monotonic counter is a hardware resource the enclave
			// blocks on. Payment processing overlaps with the wait —
			// the overlap is why batching recovers stable-storage
			// throughput ("can be batched while waiting for counters",
			// §7.2) — so Pay charges max(counter, processing);
			// everything else waits out the increment.
			if _, isPay := payload.(*wire.Pay); isPay {
				if CostCounterIncrement > cpu {
					cpu = CostCounterIncrement
				}
			} else {
				cpu += CostCounterIncrement
			}
		}
		return cpu, delay
	}
}

// stateChanging reports whether handling the message mutates enclave
// state (and therefore requires a sealed, counter-protected checkpoint
// in the stable-storage configuration).
func stateChanging(payload any) bool {
	switch payload.(type) {
	case *wire.Pay, *wire.PayBatch, *wire.ReplUpdate, *wire.ChannelOpen, *wire.ChannelAck,
		*wire.ApproveDeposit, *wire.AssociateDeposit, *wire.DissociateDeposit,
		*wire.DissociateAck, *wire.MhLock, *wire.MhSign, *wire.MhPreUpdate,
		*wire.MhUpdate, *wire.MhPostUpdate, *wire.MhRelease:
		return true
	default:
		return false
	}
}
