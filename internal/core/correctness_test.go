package core

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"teechain/internal/chain"
	"teechain/internal/cryptoutil"
)

// Property-based tests for the paper's formal guarantee (Appendix A):
// balance correctness — at any point, any well-behaved user can
// unilaterally reclaim their perceived balance on the blockchain,
// regardless of what others do.

// randomOpsWorld drives a two-party channel through a random operation
// sequence (payments both ways, deposit associations, dissociations)
// and then verifies invariants.
func runRandomOps(t *testing.T, script []byte) {
	t.Helper()
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	w.connect(a, b)
	id := w.openChannel(a, b)
	w.fundAndAssociate(a, b, id, 500)
	w.fundAndAssociate(b, a, id, 500)

	initial := a.Enclave().State().PerceivedBalance() + b.Enclave().State().PerceivedBalance()

	for _, op := range script {
		switch op % 5 {
		case 0: // alice pays
			amt := chain.Amount(op%97) + 1
			if c := a.Enclave().State().Channels[id]; c.MyBal >= amt {
				if err := a.Pay(id, amt, nil); err != nil {
					t.Fatalf("alice pay: %v", err)
				}
			}
		case 1: // bob pays
			amt := chain.Amount(op%53) + 1
			if c := b.Enclave().State().Channels[id]; c.MyBal >= amt {
				if err := b.Pay(id, amt, nil); err != nil {
					t.Fatalf("bob pay: %v", err)
				}
			}
		case 2: // alice adds a deposit
			if op%2 == 0 {
				w.fundAndAssociate(a, b, id, chain.Amount(op)+1)
			}
		case 3: // alice tries to dissociate her first deposit
			c := a.Enclave().State().Channels[id]
			if len(c.MyDeps) > 1 && c.MyBal >= c.MyDeps[0].Value {
				if err := a.DissociateDeposit(id, c.MyDeps[0].Point); err != nil {
					t.Fatalf("dissociate: %v", err)
				}
			}
		case 4: // drain the network
			w.run()
		}
	}
	w.run()

	// Invariant 1: perceived balances conserved (minus nothing — no
	// settlements happened; funded deposits added value).
	var funded chain.Amount
	for _, st := range []*State{a.Enclave().State(), b.Enclave().State()} {
		for _, d := range st.Deposits {
			if d.Released {
				t.Fatal("unexpected release")
			}
		}
		_ = st
	}
	funded = w.chain.Minted()
	got := a.Enclave().State().PerceivedBalance() + b.Enclave().State().PerceivedBalance()
	if got != funded {
		t.Fatalf("perceived total %d != funded %d (initial %d)", got, funded, initial)
	}

	// Invariant 2: channel views agree.
	ca := a.Enclave().State().Channels[id]
	cb := b.Enclave().State().Channels[id]
	if ca.MyBal != cb.RemoteBal || ca.RemoteBal != cb.MyBal {
		t.Fatalf("views diverged: alice %d/%d, bob %d/%d", ca.MyBal, ca.RemoteBal, cb.MyBal, cb.RemoteBal)
	}

	// Invariant 3 (balance correctness): alice settles unilaterally and
	// recovers exactly her perceived balance on chain.
	perceivedA := a.Enclave().State().PerceivedBalance()
	if _, err := a.Settle(id); err != nil {
		t.Fatalf("settle: %v", err)
	}
	w.run()
	// Release any free deposits too.
	for point, rec := range a.Enclave().State().Deposits {
		if rec.Free && !rec.Released {
			if err := a.ReleaseDeposit(point); err != nil {
				t.Fatalf("release: %v", err)
			}
		}
	}
	w.run()
	w.chain.MineBlocks(2)
	w.run()
	if got := w.chain.BalanceByAddress(a.wallet.Address()); got != perceivedA {
		t.Fatalf("alice recovered %d on chain, perceived %d", got, perceivedA)
	}
	if w.chain.TotalUnspent() != w.chain.Minted() {
		t.Fatal("chain value not conserved")
	}
}

func TestBalanceCorrectnessQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	f := func(script []byte) bool {
		if len(script) > 24 {
			script = script[:24]
		}
		sub := fmt.Sprintf("script-%x", script)
		ok := t.Run(sub, func(t *testing.T) { runRandomOps(t, script) })
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStateApplyRejectsInvalidOps(t *testing.T) {
	st := NewState(cryptoutilKey(t, "o").Public())
	if err := st.Apply(&Op{Kind: OpPaySend, Channel: "nope", Amount: 1, Count: 1}); err == nil {
		t.Fatal("pay on unknown channel accepted")
	}
	if err := st.Apply(&Op{Kind: OpKind(99)}); err == nil {
		t.Fatal("unknown op kind accepted")
	}
	if err := st.Apply(&Op{Kind: OpFreeze}); err != nil {
		t.Fatal(err)
	}
	if !st.Frozen {
		t.Fatal("freeze op did not freeze")
	}
	if err := st.Apply(&Op{Kind: OpRegisterDeposit}); err != ErrFrozen {
		t.Fatalf("frozen state accepted op: %v", err)
	}
}

func TestStateSnapshotRoundTrip(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	w.connect(a, b)
	id := w.openChannel(a, b)
	w.fundAndAssociate(a, b, id, 777)
	if err := a.Pay(id, 111, nil); err != nil {
		t.Fatal(err)
	}
	w.run()

	snap, err := encodeState(a.Enclave().State())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := decodeState(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.PerceivedBalance() != a.Enclave().State().PerceivedBalance() {
		t.Fatal("snapshot round trip changed perceived balance")
	}
	c := restored.Channels[id]
	if c == nil || c.MyBal != 666 || c.RemoteBal != 111 {
		t.Fatalf("restored channel wrong: %+v", c)
	}
}

func TestDeterministicReplay(t *testing.T) {
	// The same scenario run twice produces identical virtual-time
	// traces — the property every experiment in the paper reproduction
	// rests on.
	run := func() (time.Duration, chain.Amount) {
		w := newWorld(t)
		a := w.node("alice", NodeConfig{})
		b := w.node("bob", NodeConfig{})
		w.connect(a, b)
		id := w.openChannel(a, b)
		w.fundAndAssociate(a, b, id, 1000)
		for i := 0; i < 20; i++ {
			if err := a.Pay(id, chain.Amount(i)+1, nil); err != nil {
				t.Fatal(err)
			}
		}
		w.run()
		c := a.Enclave().State().Channels[id]
		return time.Duration(w.sim.Now()), c.MyBal
	}
	t1, b1 := run()
	t2, b2 := run()
	if t1 != t2 || b1 != b2 {
		t.Fatalf("replay diverged: (%v,%d) vs (%v,%d)", t1, b1, t2, b2)
	}
}

func cryptoutilKey(t *testing.T, seed string) *cryptoutil.KeyPair {
	t.Helper()
	kp, err := cryptoutil.GenerateKeyPair(cryptoutil.NewDeterministicReader([]byte(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return kp
}
