package core

import (
	"sort"

	"teechain/internal/cryptoutil"
)

// Router finds payment paths over the channel graph. The paper assumes
// routes are determined out of band (§3, footnote 2); Router is the
// out-of-band mechanism for this deployment: hosts feed it channel
// openings and query shortest (or progressively longer, for dynamic
// routing §7.4) identity paths.
type Router struct {
	adj map[cryptoutil.PublicKey]map[cryptoutil.PublicKey]int // edge -> channel count
}

// NewRouter returns an empty channel graph.
func NewRouter() *Router {
	return &Router{adj: make(map[cryptoutil.PublicKey]map[cryptoutil.PublicKey]int)}
}

// AddChannel records a (bidirectional) channel between two identities.
func (r *Router) AddChannel(a, b cryptoutil.PublicKey) {
	r.edge(a)[b]++
	r.edge(b)[a]++
}

// RemoveChannel removes one channel between two identities.
func (r *Router) RemoveChannel(a, b cryptoutil.PublicKey) {
	if m := r.adj[a]; m != nil && m[b] > 0 {
		m[b]--
		if m[b] == 0 {
			delete(m, b)
		}
	}
	if m := r.adj[b]; m != nil && m[a] > 0 {
		m[a]--
		if m[a] == 0 {
			delete(m, a)
		}
	}
}

func (r *Router) edge(a cryptoutil.PublicKey) map[cryptoutil.PublicKey]int {
	m, ok := r.adj[a]
	if !ok {
		m = make(map[cryptoutil.PublicKey]int)
		r.adj[a] = m
	}
	return m
}

// neighbours returns a's neighbours in deterministic order.
func (r *Router) neighbours(a cryptoutil.PublicKey) []cryptoutil.PublicKey {
	m := r.adj[a]
	out := make([]cryptoutil.PublicKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		return lessKey(out[i], out[j])
	})
	return out
}

func lessKey(a, b cryptoutil.PublicKey) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// ShortestPath returns one shortest identity path from src to dst
// (inclusive), or nil if unreachable.
func (r *Router) ShortestPath(src, dst cryptoutil.PublicKey) []cryptoutil.PublicKey {
	paths := r.Paths(src, dst, 1, 0)
	if len(paths) == 0 {
		return nil
	}
	return paths[0]
}

// Paths returns up to k simple paths from src to dst ordered by
// non-decreasing length, considering paths at most extra hops longer
// than the shortest (dynamic routing tries the shortest first, then
// incrementally longer alternatives, §7.4). Search is a breadth-first
// enumeration over simple paths, bounded to keep it tractable on the
// deployment sizes the paper evaluates (≤ 30 nodes).
func (r *Router) Paths(src, dst cryptoutil.PublicKey, k, extra int) [][]cryptoutil.PublicKey {
	if k < 1 {
		return nil
	}
	if src == dst {
		return [][]cryptoutil.PublicKey{{src}}
	}
	type partial struct {
		path []cryptoutil.PublicKey
		seen map[cryptoutil.PublicKey]bool
	}
	var results [][]cryptoutil.PublicKey
	shortest := -1
	queue := []partial{{path: []cryptoutil.PublicKey{src}, seen: map[cryptoutil.PublicKey]bool{src: true}}}
	const maxExpansions = 200_000
	expansions := 0
	for len(queue) > 0 && len(results) < k {
		p := queue[0]
		queue = queue[1:]
		if shortest >= 0 && len(p.path)-1 > shortest+extra {
			break
		}
		last := p.path[len(p.path)-1]
		for _, next := range r.neighbours(last) {
			if p.seen[next] {
				continue
			}
			expansions++
			if expansions > maxExpansions {
				return results
			}
			np := make([]cryptoutil.PublicKey, len(p.path)+1)
			copy(np, p.path)
			np[len(p.path)] = next
			if next == dst {
				if shortest < 0 {
					shortest = len(np) - 1
				}
				if len(np)-1 <= shortest+extra {
					results = append(results, np)
					if len(results) >= k {
						return results
					}
				}
				continue
			}
			ns := make(map[cryptoutil.PublicKey]bool, len(p.seen)+1)
			for key := range p.seen {
				ns[key] = true
			}
			ns[next] = true
			queue = append(queue, partial{path: np, seen: ns})
		}
	}
	return results
}
