package core

import (
	"sort"

	"teechain/internal/cryptoutil"
)

// Router finds payment paths over the channel graph. The paper assumes
// routes are determined out of band (§3, footnote 2); Router is the
// out-of-band mechanism for this deployment: hosts feed it channel
// openings and query shortest (or progressively longer, for dynamic
// routing §7.4) identity paths.
//
// Identities are interned to dense integer handles on first sight, so
// the graph is adjacency-by-small-int rather than maps keyed by 65-byte
// public keys; the keys appear only at the API boundary. Neighbour
// enumeration stays ordered by key bytes, which keeps path enumeration
// deterministic and identical to the un-interned implementation.
type Router struct {
	ids  map[cryptoutil.PublicKey]int32
	keys []cryptoutil.PublicKey // handle -> key
	// adj[h] holds channel counts indexed by neighbour handle (0 = no
	// edge); deployments are small (≤ tens of nodes), so dense rows are
	// cheaper than maps.
	adj [][]int32
	// sorted[h] caches h's neighbour handles ordered by key bytes;
	// invalidated (nil) when h's row changes.
	sorted [][]int32
}

// NewRouter returns an empty channel graph.
func NewRouter() *Router {
	return &Router{ids: make(map[cryptoutil.PublicKey]int32)}
}

// intern returns the dense handle for a key, assigning one on first
// sight.
func (r *Router) intern(k cryptoutil.PublicKey) int32 {
	if h, ok := r.ids[k]; ok {
		return h
	}
	h := int32(len(r.keys))
	r.ids[k] = h
	r.keys = append(r.keys, k)
	r.adj = append(r.adj, nil)
	r.sorted = append(r.sorted, nil)
	return h
}

func (r *Router) bump(a, b int32, delta int32) {
	row := r.adj[a]
	if int(b) >= len(row) {
		grown := make([]int32, len(r.keys))
		copy(grown, row)
		row = grown
		r.adj[a] = row
	}
	n := row[b] + delta
	if n < 0 {
		n = 0
	}
	row[b] = n
	r.sorted[a] = nil
}

// AddChannel records a (bidirectional) channel between two identities.
func (r *Router) AddChannel(a, b cryptoutil.PublicKey) {
	ha, hb := r.intern(a), r.intern(b)
	r.bump(ha, hb, 1)
	r.bump(hb, ha, 1)
}

// RemoveChannel removes one channel between two identities.
func (r *Router) RemoveChannel(a, b cryptoutil.PublicKey) {
	ha, ok := r.ids[a]
	if !ok {
		return
	}
	hb, ok := r.ids[b]
	if !ok {
		return
	}
	r.bump(ha, hb, -1)
	r.bump(hb, ha, -1)
}

// neighbours returns h's neighbour handles ordered by key bytes
// (deterministic), caching the sorted order until the row changes.
func (r *Router) neighbours(h int32) []int32 {
	if s := r.sorted[h]; s != nil {
		return s
	}
	row := r.adj[h]
	out := make([]int32, 0, len(row))
	for nb, count := range row {
		if count > 0 {
			out = append(out, int32(nb))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return lessKey(r.keys[out[i]], r.keys[out[j]])
	})
	r.sorted[h] = out
	return out
}

func lessKey(a, b cryptoutil.PublicKey) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// ShortestPath returns one shortest identity path from src to dst
// (inclusive), or nil if unreachable.
func (r *Router) ShortestPath(src, dst cryptoutil.PublicKey) []cryptoutil.PublicKey {
	paths := r.Paths(src, dst, 1, 0)
	if len(paths) == 0 {
		return nil
	}
	return paths[0]
}

// Paths returns up to k simple paths from src to dst ordered by
// non-decreasing length, considering paths at most extra hops longer
// than the shortest (dynamic routing tries the shortest first, then
// incrementally longer alternatives, §7.4). Search is a breadth-first
// enumeration over simple paths, bounded to keep it tractable on the
// deployment sizes the paper evaluates (≤ 30 nodes).
func (r *Router) Paths(src, dst cryptoutil.PublicKey, k, extra int) [][]cryptoutil.PublicKey {
	if k < 1 {
		return nil
	}
	if src == dst {
		return [][]cryptoutil.PublicKey{{src}}
	}
	hs, ok := r.ids[src]
	if !ok {
		return nil
	}
	hd, ok := r.ids[dst]
	if !ok {
		return nil
	}
	type partial struct {
		path []int32
		seen []bool
	}
	var found [][]int32
	shortest := -1
	first := partial{path: []int32{hs}, seen: make([]bool, len(r.keys))}
	first.seen[hs] = true
	queue := []partial{first}
	const maxExpansions = 200_000
	expansions := 0
	for len(queue) > 0 && len(found) < k {
		p := queue[0]
		queue = queue[1:]
		if shortest >= 0 && len(p.path)-1 > shortest+extra {
			break
		}
		last := p.path[len(p.path)-1]
		for _, next := range r.neighbours(last) {
			if p.seen[next] {
				continue
			}
			expansions++
			if expansions > maxExpansions {
				return r.toKeys(found)
			}
			np := make([]int32, len(p.path)+1)
			copy(np, p.path)
			np[len(p.path)] = next
			if next == hd {
				if shortest < 0 {
					shortest = len(np) - 1
				}
				if len(np)-1 <= shortest+extra {
					found = append(found, np)
					if len(found) >= k {
						return r.toKeys(found)
					}
				}
				continue
			}
			ns := make([]bool, len(r.keys))
			copy(ns, p.seen)
			ns[next] = true
			queue = append(queue, partial{path: np, seen: ns})
		}
	}
	return r.toKeys(found)
}

func (r *Router) toKeys(paths [][]int32) [][]cryptoutil.PublicKey {
	if len(paths) == 0 {
		return nil
	}
	out := make([][]cryptoutil.PublicKey, len(paths))
	for i, p := range paths {
		kp := make([]cryptoutil.PublicKey, len(p))
		for j, h := range p {
			kp[j] = r.keys[h]
		}
		out[i] = kp
	}
	return out
}
