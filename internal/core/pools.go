package core

import (
	"sync"

	"teechain/internal/cryptoutil"
	"teechain/internal/wire"
)

// hotPools recycles the objects a payment allocates on its way through
// the stack — the replicated Op, the wire message, the Result
// aggregate, and the host Envelope (whose Token buffer doubles as the
// session-token scratch space). Each is alive only from one enclave
// entry point to the next simulator event, so with the pools the
// steady-state payment path allocates nothing except event boxing; see
// DESIGN.md §6 for the ownership rules.
//
// One hotPools instance is shared by every node of a deployment (via
// its Directory). Simulated deployments run on a single goroutine, so
// the freelists are plain by default; a socket host whose payment lanes
// run concurrently (see concurrent.go) calls setShared once at startup,
// after which every get/put takes the pool mutex. The lock is a few
// tens of nanoseconds against the microseconds a socket payment costs,
// so it is not the lane-scaling bottleneck — and the sim path pays only
// a predicted-false branch (no defer: these bodies cannot panic between
// lock and unlock).
type hotPools struct {
	// shared is set once, before any concurrency exists, and read-only
	// afterwards.
	shared bool
	mu     sync.Mutex

	envs        []*Envelope
	results     []*Result
	ops         []*Op
	pays        []*wire.Pay
	acks        []*wire.PayAck
	batches     []*wire.PayBatch
	batchAcks   []*wire.PayBatchAck
	replUpdates []*wire.ReplUpdate
	replAcks    []*wire.ReplAck
}

func newHotPools() *hotPools { return &hotPools{} }

// setShared switches the pools to mutex-guarded mode. Must be called
// before the deployment spawns any goroutine that touches them.
func (p *hotPools) setShared() { p.shared = true }

// lock/unlock keep the mutex operations out of line so that the
// non-shared (simulator) path inlines to a single predicted-false
// branch at every call site — the sim's zero-alloc hot path must not
// pay function-call overhead for a lock it never takes.
func (p *hotPools) lock() {
	if p.shared {
		p.lockSlow()
	}
}

func (p *hotPools) unlock() {
	if p.shared {
		p.unlockSlow()
	}
}

//go:noinline
func (p *hotPools) lockSlow() { p.mu.Lock() }

//go:noinline
func (p *hotPools) unlockSlow() { p.mu.Unlock() }

// getResult returns an empty pooled Result. Results obtained here are
// recycled by Node.dispatch after their contents are consumed; only
// construct one per enclave return value, never retain it.
func (p *hotPools) getResult() *Result {
	p.lock()
	var r *Result
	if k := len(p.results); k > 0 {
		r = p.results[k-1]
		p.results = p.results[:k-1]
	} else {
		r = &Result{pooled: true}
	}
	p.unlock()
	return r
}

// putResult recycles a Result previously obtained from getResult.
// Results built with plain literals (pooled == false) pass through
// untouched, so cold paths may keep references to theirs.
func (p *hotPools) putResult(r *Result) {
	if r == nil || !r.pooled {
		return
	}
	p.lock()
	p.putResultLocked(r)
	p.unlock()
}

func (p *hotPools) putResultLocked(r *Result) {
	for i := range r.Out {
		r.Out[i] = Outbound{}
	}
	for i := range r.Events {
		r.Events[i] = nil
	}
	r.Out = r.Out[:0]
	r.Events = r.Events[:0]
	r.pay = payEvent{}
	p.results = append(p.results, r)
}

// getOp returns a zeroed Op for a hot-path state transition. commitFast
// recycles it once nothing retains it (on commit when unreplicated,
// otherwise when the replication ack releases the pending update).
func (p *hotPools) getOp() *Op {
	p.lock()
	var op *Op
	if k := len(p.ops); k > 0 {
		op = p.ops[k-1]
		p.ops = p.ops[:k-1]
	} else {
		op = new(Op)
	}
	p.unlock()
	return op
}

func (p *hotPools) putOp(op *Op) {
	*op = Op{}
	p.lock()
	p.ops = append(p.ops, op)
	p.unlock()
}

// RecycleResult returns a Result obtained from an enclave entry point
// (and any poolable wire messages it carries) to the enclave's hot-path
// pools. External hosts — the socket transport — call it after fully
// consuming a result: every outbound message encoded, every event
// handled, no references retained. Node-hosted deployments recycle
// through dispatch instead and never call this. Literal (non-pooled)
// results pass through untouched, so it is always safe to call.
func (e *Enclave) RecycleResult(r *Result) {
	if r == nil || !r.pooled {
		return
	}
	p := e.pools
	p.lock()
	for i := range r.Out {
		p.recycleMsgLocked(r.Out[i].Msg)
	}
	p.putResultLocked(r)
	p.unlock()
}

// recycleMsgLocked returns a poolable wire message to its freelist;
// non-poolable messages pass through untouched.
func (p *hotPools) recycleMsgLocked(msg wire.Message) {
	switch m := msg.(type) {
	case *wire.Pay:
		*m = wire.Pay{}
		p.pays = append(p.pays, m)
	case *wire.PayAck:
		*m = wire.PayAck{}
		p.acks = append(p.acks, m)
	case *wire.PayBatch:
		m.Channel = ""
		m.Amounts = m.Amounts[:0]
		p.batches = append(p.batches, m)
	case *wire.PayBatchAck:
		*m = wire.PayBatchAck{}
		p.batchAcks = append(p.batchAcks, m)
	case *wire.ReplUpdate:
		// The Op pointer is dropped, not recycled: it stays referenced by
		// the primary's log entry until the chain acknowledges it.
		*m = wire.ReplUpdate{}
		p.replUpdates = append(p.replUpdates, m)
	case *wire.ReplAck:
		m.Chain = ""
		m.Seq = 0
		m.TauSigs = nil // sig slices travel onward in relayed acks
		p.replAcks = append(p.replAcks, m)
	}
}

// hotOp reports whether op is one of the pay-path kinds whose Apply
// retains nothing, making the op safe to recycle.
func hotOp(op *Op) bool {
	switch op.Kind {
	case OpPaySend, OpPayRecv, OpPayRevert:
		return true
	}
	return false
}

func (p *hotPools) getPayMsg() *wire.Pay {
	p.lock()
	var m *wire.Pay
	if k := len(p.pays); k > 0 {
		m = p.pays[k-1]
		p.pays = p.pays[:k-1]
	} else {
		m = new(wire.Pay)
	}
	p.unlock()
	return m
}

func (p *hotPools) getPayAckMsg() *wire.PayAck {
	p.lock()
	var m *wire.PayAck
	if k := len(p.acks); k > 0 {
		m = p.acks[k-1]
		p.acks = p.acks[:k-1]
	} else {
		m = new(wire.PayAck)
	}
	p.unlock()
	return m
}

// getPayBatchMsg returns a PayBatch whose Amounts slice keeps capacity
// from previous journeys; append into Amounts[:0].
func (p *hotPools) getPayBatchMsg() *wire.PayBatch {
	p.lock()
	var m *wire.PayBatch
	if k := len(p.batches); k > 0 {
		m = p.batches[k-1]
		p.batches = p.batches[:k-1]
	} else {
		m = new(wire.PayBatch)
	}
	p.unlock()
	return m
}

func (p *hotPools) getPayBatchAckMsg() *wire.PayBatchAck {
	p.lock()
	var m *wire.PayBatchAck
	if k := len(p.batchAcks); k > 0 {
		m = p.batchAcks[k-1]
		p.batchAcks = p.batchAcks[:k-1]
	} else {
		m = new(wire.PayBatchAck)
	}
	p.unlock()
	return m
}

// getReplUpdateMsg returns a zeroed ReplUpdate for the replication
// emit path (immediate mode and solo pipelined flushes).
func (p *hotPools) getReplUpdateMsg() *wire.ReplUpdate {
	p.lock()
	var m *wire.ReplUpdate
	if k := len(p.replUpdates); k > 0 {
		m = p.replUpdates[k-1]
		p.replUpdates = p.replUpdates[:k-1]
	} else {
		m = new(wire.ReplUpdate)
	}
	p.unlock()
	return m
}

// getReplAckMsg returns a zeroed ReplAck for the backup ack path.
func (p *hotPools) getReplAckMsg() *wire.ReplAck {
	p.lock()
	var m *wire.ReplAck
	if k := len(p.replAcks); k > 0 {
		m = p.replAcks[k-1]
		p.replAcks = p.replAcks[:k-1]
	} else {
		m = new(wire.ReplAck)
	}
	p.unlock()
	return m
}

// getEnvelope returns an Envelope whose Token buffer may carry capacity
// from a previous journey; seal into Token[:0].
func (p *hotPools) getEnvelope() *Envelope {
	p.lock()
	var env *Envelope
	if k := len(p.envs); k > 0 {
		env = p.envs[k-1]
		p.envs = p.envs[:k-1]
		env.pooled = true
	} else {
		env = &Envelope{pooled: true}
	}
	p.unlock()
	return env
}

// putEnvelope recycles an envelope after its receiver has fully handled
// it, along with the poolable wire messages it carried. Only envelopes
// from getEnvelope recycle — hosts send each exactly once — while
// externally constructed ones (tests model replay attacks by delivering
// one envelope twice) pass through untouched, so a duplicate delivery
// can never alias a recycled object. The flag also makes release
// idempotent.
func (p *hotPools) putEnvelope(env *Envelope) {
	if !env.pooled {
		return
	}
	env.pooled = false
	p.lock()
	p.recycleMsgLocked(env.Msg)
	env.From = cryptoutil.PublicKey{}
	env.Msg = nil
	env.Token = env.Token[:0]
	p.envs = append(p.envs, env)
	p.unlock()
}
