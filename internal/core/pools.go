package core

import (
	"teechain/internal/cryptoutil"
	"teechain/internal/wire"
)

// hotPools recycles the objects a payment allocates on its way through
// the stack — the replicated Op, the wire message, the Result
// aggregate, and the host Envelope (whose Token buffer doubles as the
// session-token scratch space). Each is alive only from one enclave
// entry point to the next simulator event, so with the pools the
// steady-state payment path allocates nothing except event boxing; see
// DESIGN.md §6 for the ownership rules.
//
// One hotPools instance is shared by every node of a deployment (via
// its Directory): a deployment runs on a single goroutine, so plain
// freelists suffice, and the parallel experiment harness gives each
// deployment its own instance, so no synchronisation is needed.
type hotPools struct {
	envs    []*Envelope
	results []*Result
	ops     []*Op
	pays    []*wire.Pay
	acks    []*wire.PayAck
}

func newHotPools() *hotPools { return &hotPools{} }

// getResult returns an empty pooled Result. Results obtained here are
// recycled by Node.dispatch after their contents are consumed; only
// construct one per enclave return value, never retain it.
func (p *hotPools) getResult() *Result {
	if k := len(p.results); k > 0 {
		r := p.results[k-1]
		p.results = p.results[:k-1]
		return r
	}
	return &Result{pooled: true}
}

// putResult recycles a Result previously obtained from getResult.
// Results built with plain literals (pooled == false) pass through
// untouched, so cold paths may keep references to theirs.
func (p *hotPools) putResult(r *Result) {
	if r == nil || !r.pooled {
		return
	}
	for i := range r.Out {
		r.Out[i] = Outbound{}
	}
	for i := range r.Events {
		r.Events[i] = nil
	}
	r.Out = r.Out[:0]
	r.Events = r.Events[:0]
	r.pay = payEvent{}
	p.results = append(p.results, r)
}

// getOp returns a zeroed Op for a hot-path state transition. commitFast
// recycles it once nothing retains it (on commit when unreplicated,
// otherwise when the replication ack releases the pending update).
func (p *hotPools) getOp() *Op {
	if k := len(p.ops); k > 0 {
		op := p.ops[k-1]
		p.ops = p.ops[:k-1]
		return op
	}
	return new(Op)
}

func (p *hotPools) putOp(op *Op) {
	*op = Op{}
	p.ops = append(p.ops, op)
}

// RecycleResult returns a Result obtained from an enclave entry point
// (and any poolable wire messages it carries) to the enclave's hot-path
// pools. External hosts — the socket transport — call it after fully
// consuming a result: every outbound message encoded, every event
// handled, no references retained. Node-hosted deployments recycle
// through dispatch instead and never call this. Literal (non-pooled)
// results pass through untouched, so it is always safe to call.
func (e *Enclave) RecycleResult(r *Result) {
	if r == nil || !r.pooled {
		return
	}
	for i := range r.Out {
		switch m := r.Out[i].Msg.(type) {
		case *wire.Pay:
			*m = wire.Pay{}
			e.pools.pays = append(e.pools.pays, m)
		case *wire.PayAck:
			*m = wire.PayAck{}
			e.pools.acks = append(e.pools.acks, m)
		}
	}
	e.pools.putResult(r)
}

// hotOp reports whether op is one of the pay-path kinds whose Apply
// retains nothing, making the op safe to recycle.
func hotOp(op *Op) bool {
	switch op.Kind {
	case OpPaySend, OpPayRecv, OpPayRevert:
		return true
	}
	return false
}

func (p *hotPools) getPayMsg() *wire.Pay {
	if k := len(p.pays); k > 0 {
		m := p.pays[k-1]
		p.pays = p.pays[:k-1]
		return m
	}
	return new(wire.Pay)
}

func (p *hotPools) getPayAckMsg() *wire.PayAck {
	if k := len(p.acks); k > 0 {
		m := p.acks[k-1]
		p.acks = p.acks[:k-1]
		return m
	}
	return new(wire.PayAck)
}

// getEnvelope returns an Envelope whose Token buffer may carry capacity
// from a previous journey; seal into Token[:0].
func (p *hotPools) getEnvelope() *Envelope {
	if k := len(p.envs); k > 0 {
		env := p.envs[k-1]
		p.envs = p.envs[:k-1]
		env.pooled = true
		return env
	}
	return &Envelope{pooled: true}
}

// putEnvelope recycles an envelope after its receiver has fully handled
// it, along with the poolable wire messages it carried. Only envelopes
// from getEnvelope recycle — hosts send each exactly once — while
// externally constructed ones (tests model replay attacks by delivering
// one envelope twice) pass through untouched, so a duplicate delivery
// can never alias a recycled object. The flag also makes release
// idempotent.
func (p *hotPools) putEnvelope(env *Envelope) {
	if !env.pooled {
		return
	}
	env.pooled = false
	switch m := env.Msg.(type) {
	case *wire.Pay:
		*m = wire.Pay{}
		p.pays = append(p.pays, m)
	case *wire.PayAck:
		*m = wire.PayAck{}
		p.acks = append(p.acks, m)
	}
	env.From = cryptoutil.PublicKey{}
	env.Msg = nil
	env.Token = env.Token[:0]
	p.envs = append(p.envs, env)
}
