package core

import (
	"strings"
	"testing"
	"time"

	"teechain/internal/chain"
	"teechain/internal/cryptoutil"
	"teechain/internal/route"
)

// TestMultihopFees runs a fee-carrying payment over A-B-C-D and checks
// the exact per-channel split: D receives the base amount, each
// intermediary keeps precisely its scheduled fee, A is debited amount
// plus every fee, and total value is conserved.
func TestMultihopFees(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	c := w.node("carol", NodeConfig{})
	d := w.node("dave", NodeConfig{})
	if err := b.Enclave().SetFeePolicy(route.FeePolicy{Base: 5, RatePPM: 10_000}); err != nil { // 5 + 1%
		t.Fatal(err)
	}
	if err := c.Enclave().SetFeePolicy(route.FeePolicy{Base: 3}); err != nil {
		t.Fatal(err)
	}
	ids := w.pipeline(1000, a, b, c, d)

	// C forwards 200 to D: fee 3, C receives 203. B forwards 203 to C:
	// fee 5 + 2 (1% of 203, truncated) = 7, B receives 210.
	fees := []chain.Amount{0, 7, 3, 0}
	var completed bool
	err := a.PayMultihopFees(
		[][]cryptoutil.PublicKey{identityPath(a, b, c, d)}, [][]chain.Amount{fees},
		200, 1,
		func(ok bool, _ time.Duration, reason string) {
			if !ok {
				t.Fatalf("multihop failed: %s", reason)
			}
			completed = true
		})
	if err != nil {
		t.Fatal(err)
	}
	w.run()
	if !completed {
		t.Fatal("fee-carrying multihop never completed")
	}

	type want struct {
		n      *Node
		ch     int
		my     chain.Amount
		remote chain.Amount
	}
	for _, tc := range []want{
		{a, 0, 790, 210}, // A debited 200+7+3
		{b, 0, 210, 790},
		{b, 1, 797, 203}, // B forwarded 203, kept 7
		{c, 1, 203, 797},
		{c, 2, 800, 200}, // C forwarded 200, kept 3
		{d, 2, 200, 800}, // D received exactly the base amount
	} {
		my, remote := channelBal(t, tc.n, ids[tc.ch])
		if my != tc.my || remote != tc.remote {
			t.Fatalf("%s channel %d balances (%d, %d), want (%d, %d)",
				tc.n.ID, tc.ch, my, remote, tc.my, tc.remote)
		}
	}
	// Conservation: the pipeline deposited 1000 into each of the three
	// channels (sender side only), and fees move value without creating
	// or destroying any.
	var total chain.Amount
	for _, n := range []*Node{a, b, c, d} {
		total += n.Enclave().State().PerceivedBalance()
	}
	if total != 3000 {
		t.Fatalf("total perceived balance %d, want 3000", total)
	}
}

// TestMultihopFeeBelowPolicy sends a schedule that undercuts the hop's
// policy; the hop must refuse with a TRANSIENT abort (stale-fee
// announcements are a benign routing error) and lock nothing.
func TestMultihopFeeBelowPolicy(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{MaxRetries: 1})
	b := w.node("bob", NodeConfig{})
	c := w.node("carol", NodeConfig{})
	if err := b.Enclave().SetFeePolicy(route.FeePolicy{Base: 10}); err != nil {
		t.Fatal(err)
	}
	w.pipeline(1000, a, b, c)

	var reason string
	transient := false
	a.OnEvent(func(ev Event) {
		if e, ok := ev.(EvMultihopComplete); ok && !e.OK {
			reason, transient = e.Reason, e.Transient
		}
	})
	done := false
	err := a.PayMultihopFees(
		[][]cryptoutil.PublicKey{identityPath(a, b, c)}, [][]chain.Amount{{0, 4, 0}},
		100, 1,
		func(ok bool, _ time.Duration, r string) {
			done = true
			if ok {
				t.Fatal("underpaying multihop succeeded")
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	w.run()
	if !done {
		t.Fatal("multihop never resolved")
	}
	if !transient || !strings.Contains(reason, "fee") {
		t.Fatalf("want transient fee abort, got transient=%v reason=%q", transient, reason)
	}
	// Nothing stays locked on either side.
	for _, n := range []*Node{a, b, c} {
		for _, ch := range n.Enclave().State().Channels {
			if ch.Stage != MhIdle {
				t.Fatalf("%s channel %s stuck in %v after fee refusal", n.ID, ch.ID, ch.Stage)
			}
		}
	}
	// A sufficient schedule sails through the same hop.
	ok2 := false
	err = a.PayMultihopFees(
		[][]cryptoutil.PublicKey{identityPath(a, b, c)}, [][]chain.Amount{{0, 10, 0}},
		100, 1,
		func(ok bool, _ time.Duration, r string) {
			if !ok {
				t.Fatalf("adequate fee refused: %s", r)
			}
			ok2 = true
		})
	if err != nil {
		t.Fatal(err)
	}
	w.run()
	if !ok2 {
		t.Fatal("adequate-fee multihop never completed")
	}
}

// TestMultihopRejectsCyclicPath pins the pre-lock path validation: a
// path that revisits an identity is refused at the initiator before any
// channel is locked, and a forged lock with a cycle is refused by the
// first hop.
func TestMultihopRejectsCyclicPath(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	c := w.node("carol", NodeConfig{})
	w.pipeline(1000, a, b, c)

	cyclic := [][]cryptoutil.PublicKey{{a.Identity(), b.Identity(), a.Identity(), b.Identity(), c.Identity()}}
	if _, err := a.Enclave().PayMultihop("mh-cyclic", 10, 1, cyclic[0]); err == nil ||
		!strings.Contains(err.Error(), "twice") {
		t.Fatalf("cyclic path not rejected: %v", err)
	}
	// Nothing was locked or recorded by the refused attempt.
	if _, ok := a.Enclave().State().Multihop["mh-cyclic"]; ok {
		t.Fatal("refused payment left multihop state behind")
	}
	for _, ch := range a.Enclave().State().Channels {
		if ch.Stage != MhIdle {
			t.Fatalf("refused payment locked channel %s", ch.ID)
		}
	}
	// Degenerate repeats (A-B-A) are refused too.
	if _, err := a.Enclave().PayMultihop("mh-aba", 10, 1,
		[]cryptoutil.PublicKey{a.Identity(), b.Identity(), a.Identity()}); err == nil {
		t.Fatal("A-B-A path accepted")
	}
	// And the fee schedule validation rejects malformed shapes up front.
	path := identityPath(a, b, c)
	for _, fees := range [][]chain.Amount{
		{1, 0, 0},  // initiator charging itself
		{0, 1},     // wrong length
		{0, -1, 0}, // negative
		{0, 0, 5},  // recipient charging
	} {
		if _, err := a.Enclave().PayMultihopFees("mh-badfee", 10, 1, path, fees); err == nil {
			t.Fatalf("fee schedule %v accepted", fees)
		}
	}
}
