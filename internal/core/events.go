package core

import (
	"teechain/internal/chain"
	"teechain/internal/cryptoutil"
	"teechain/internal/wire"
)

// Outbound is a protocol message the enclave wants delivered to another
// enclave; the untrusted host owns the actual transport.
type Outbound struct {
	To  cryptoutil.PublicKey
	Msg wire.Message
}

// Event is a notification from the enclave to its own host. Concrete
// types below; hosts type-switch.
type Event any

// EvChannelRequest asks the host whether to accept an incoming channel
// (the host answers via Enclave.AcceptChannel).
type EvChannelRequest struct {
	Channel    wire.ChannelID
	Remote     cryptoutil.PublicKey
	RemoteAddr cryptoutil.Address
}

// EvChannelOpen reports a channel becoming usable.
type EvChannelOpen struct {
	Channel wire.ChannelID
	Remote  cryptoutil.PublicKey
}

// EvDepositApprovalNeeded asks the host to verify a remote deposit on
// the blockchain (the enclave cannot; §4). The host answers via
// Enclave.ConfirmRemoteDeposit.
type EvDepositApprovalNeeded struct {
	Remote  cryptoutil.PublicKey
	Deposit wire.DepositInfo
}

// EvDepositApproved reports that the remote approved one of our
// deposits for use in shared channels.
type EvDepositApproved struct {
	Remote cryptoutil.PublicKey
	Point  chain.OutPoint
}

// EvDepositAssociated reports a deposit joining a channel.
type EvDepositAssociated struct {
	Channel wire.ChannelID
	Point   chain.OutPoint
	Mine    bool
}

// EvDepositDissociated reports a deposit leaving a channel (free
// again on the owner's side).
type EvDepositDissociated struct {
	Channel wire.ChannelID
	Point   chain.OutPoint
	Mine    bool
}

// EvPaymentReceived reports incoming channel payments (possibly a
// client-side batch).
type EvPaymentReceived struct {
	Channel wire.ChannelID
	Amount  chain.Amount
	Count   int
}

// EvPayAcked reports that the remote acknowledged our payment; hosts
// use it to complete latency measurements.
type EvPayAcked struct {
	Channel wire.ChannelID
	Amount  chain.Amount
	Count   int
}

// EvPayNacked reports that the remote rejected our payment (channel
// locked mid-flight) and the debit was reversed; hosts retry.
type EvPayNacked struct {
	Channel wire.ChannelID
	Amount  chain.Amount
	Count   int
	Reason  string
}

// EvMultihopArrived reports an incoming multi-hop payment credited at
// the final recipient.
type EvMultihopArrived struct {
	Payment wire.PaymentID
	Amount  chain.Amount
	Count   int
}

// EvMultihopComplete reports the outcome of a multi-hop payment at its
// initiator. Failed payments (OK=false) may be retried by the host;
// Transient marks benign aborts (stale τ, busy channel) for which a
// retry with fresh balances is expected to succeed.
type EvMultihopComplete struct {
	Payment   wire.PaymentID
	OK        bool
	Reason    string
	Transient bool
}

// SigNeed describes a settlement input that still requires committee
// signatures: the host contacts Members with SigRequest messages.
type SigNeed struct {
	Input     int
	Committee string
	Members   []cryptoutil.PublicKey
}

// EvSettlementReady carries a settlement transaction for the host to
// complete (collect committee signatures per Needs) and submit to the
// blockchain. OffChain settlements have a nil Tx: the channel
// terminated by deposit dissociation alone.
type EvSettlementReady struct {
	Channel  wire.ChannelID
	Tx       *chain.Transaction
	Needs    []SigNeed
	OffChain bool
}

// EvChannelClosed reports channel termination.
type EvChannelClosed struct {
	Channel  wire.ChannelID
	OffChain bool
}

// EvSigComplete reports that a previously needy settlement transaction
// now carries enough signatures to submit.
type EvSigComplete struct {
	Tx *chain.Transaction
}

// EvFrozen reports a force-freeze of a replication chain (§6): the host
// must settle all channels and release deposits.
type EvFrozen struct {
	Chain  string
	Reason string
}

// EvCommitteeReady reports that all members acked committee formation
// and deposits can now be created under its multisig scripts.
type EvCommitteeReady struct {
	Chain string
}

// EvChannelResumed reports that post-crash reconciliation of one
// channel completed (the peer's ChanResumeAck arrived and any excess
// optimistic debits were reverted); the channel can carry payments
// again.
type EvChannelResumed struct {
	Channel wire.ChannelID
}

// EvReplResynced reports that every committee member adopted the
// recovered primary's state (ReplResyncStart) and replication can
// resume.
type EvReplResynced struct {
	Chain string
}

// payEvent carries the payment-path notification inline in a Result,
// avoiding the interface boxing of Events: payments are the only events
// frequent enough for boxing to matter. Kind zero means none.
type payEvent struct {
	kind    PayKind
	channel wire.ChannelID
	amount  chain.Amount
	count   int
	reason  string
}

type PayKind uint8

const (
	PayNone PayKind = iota
	PayReceived
	PayAcked
	PayNacked
)

// box converts the inline event to its public boxed form for user
// event callbacks.
func (p payEvent) box() Event {
	switch p.kind {
	case PayReceived:
		return EvPaymentReceived{Channel: p.channel, Amount: p.amount, Count: p.count}
	case PayAcked:
		return EvPayAcked{Channel: p.channel, Amount: p.amount, Count: p.count}
	case PayNacked:
		return EvPayNacked{Channel: p.channel, Amount: p.amount, Count: p.count, Reason: p.reason}
	}
	return nil
}

// PayOutcome is the unboxed payment notification a hot-path Result
// carries. Socket hosts read it via Result.PayOutcome instead of
// ForEachEvent, which would box the event into an interface (one
// allocation per payment) just to type-switch it back.
type PayOutcome struct {
	Kind    PayKind
	Channel wire.ChannelID
	Amount  chain.Amount
	Count   int
	Reason  string
}

// Result aggregates what one enclave entry point produced.
type Result struct {
	Out    []Outbound
	Events []Event

	// pay is the unboxed payment event, if any (see payEvent).
	pay payEvent

	// pooled marks Results obtained from getResult; Node.dispatch
	// recycles those after consuming them. Literal Results stay false
	// and are never recycled, so cold paths may retain them.
	pooled bool
}

// PayOutcome returns the result's unboxed payment event (Kind PayNone
// when there is none). Boxed events, if any, still need ForEachEvent —
// check HasEvents.
func (r *Result) PayOutcome() PayOutcome {
	return PayOutcome{
		Kind:    r.pay.kind,
		Channel: r.pay.channel,
		Amount:  r.pay.amount,
		Count:   r.pay.count,
		Reason:  r.pay.reason,
	}
}

// HasEvents reports whether the result carries boxed events beyond the
// unboxed payment outcome.
func (r *Result) HasEvents() bool { return len(r.Events) > 0 }

// ForEachEvent invokes fn for every event the result carries. The
// payment-path events travel unboxed in r.pay (see payEvent), so hosts
// consuming a Result directly must iterate with this rather than
// ranging over Events; boxing happens only here, when a consumer asks.
func (r *Result) ForEachEvent(fn func(Event)) {
	if r == nil {
		return
	}
	if r.pay.kind != PayNone {
		fn(r.pay.box())
	}
	for _, ev := range r.Events {
		fn(ev)
	}
}

func (r *Result) merge(o *Result) *Result {
	if o == nil {
		return r
	}
	r.Out = append(r.Out, o.Out...)
	r.Events = append(r.Events, o.Events...)
	if o.pay.kind != PayNone {
		if r.pay.kind == PayNone {
			r.pay = o.pay
		} else {
			// Two unboxed events cannot share the field; box the
			// second so no notification is lost.
			r.Events = append(r.Events, o.pay.box())
		}
	}
	return r
}

func oneOut(to cryptoutil.PublicKey, msg wire.Message) []Outbound {
	return []Outbound{{To: to, Msg: msg}}
}
