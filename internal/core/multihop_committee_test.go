package core

import (
	"testing"

	"teechain/internal/chain"
	"teechain/internal/cryptoutil"
	"time"
)

// TestMultihopWithCommitteeDepositsEjectsViaTau is the full §5 × §6
// composition: a multi-hop payment whose channels are funded by
// committee-secured (2-of-2) deposits. The intermediate settlement
// transaction τ must carry threshold signatures collected from every
// committee along the path (piggybacked on replication acks), so that
// ejection during preUpdate can settle the entire path on chain.
func TestMultihopWithCommitteeDepositsEjectsViaTau(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	c := w.node("carol", NodeConfig{})
	ra := w.node("alice-member", NodeConfig{})
	rb := w.node("bob-member", NodeConfig{})

	// Committees: alice and bob (the deposit owners on the path) each
	// have one member; every enclave that will exchange protocol or
	// signature traffic is attested pairwise.
	for _, pair := range [][2]*Node{
		{a, ra}, {b, rb},
		{a, b}, {b, c},
		{b, ra}, {c, rb}, {a, rb},
	} {
		w.connect(pair[0], pair[1])
	}
	if err := a.FormCommittee([]*Node{ra}, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.FormCommittee([]*Node{rb}, 2); err != nil {
		t.Fatal(err)
	}
	w.until(func() bool { return a.Enclave().CommitteeReady() && b.Enclave().CommitteeReady() })

	idAB := w.openChannel(a, b)
	w.fundAndAssociate(a, b, idAB, 1000)
	idBC := w.openChannel(b, c)
	w.fundAndAssociate(b, c, idBC, 1000)

	// Both deposits are committee-secured: 2-of-2 multisig scripts.
	for _, n := range []*Node{a, b} {
		for _, rec := range n.Enclave().State().Deposits {
			if rec.Info.Script.M != 2 || len(rec.Info.Script.Keys) != 2 {
				t.Fatalf("deposit script is %d-of-%d, want 2-of-2", rec.Info.Script.M, len(rec.Info.Script.Keys))
			}
		}
	}

	if err := a.PayMultihop([][]cryptoutil.PublicKey{identityPath(a, b, c)}, 200, 1, nil); err != nil {
		t.Fatal(err)
	}
	pid := runUntilStage(w, b, MhPreUpdate)

	// τ at bob must already be fully signed — including both
	// committees' threshold signatures, gathered during the sign stage.
	mh := b.Enclave().State().Multihop[pid]
	if mh.Tau == nil {
		t.Fatal("no τ at preUpdate")
	}
	for i := range mh.Tau.Inputs {
		nonzero := 0
		for _, s := range mh.Tau.Inputs[i].Sigs {
			if !s.IsZero() {
				nonzero++
			}
		}
		if nonzero < 2 {
			t.Fatalf("τ input %d carries %d signatures, want 2 (threshold)", i, nonzero)
		}
	}

	// Bob ejects: τ settles the whole path at post-payment state.
	sr, err := b.EjectPayment(pid)
	if err != nil {
		t.Fatalf("EjectPayment: %v", err)
	}
	if len(sr.Txs) != 1 {
		t.Fatalf("expected τ alone, got %d transactions", len(sr.Txs))
	}
	w.run()
	for i := 0; i < 6; i++ {
		w.chain.MineBlock()
		w.run()
	}

	wealthOf := func(n *Node) chain.Amount {
		return w.chain.BalanceByAddress(n.wallet.Address()) + n.Enclave().State().PerceivedBalance()
	}
	got := [3]chain.Amount{wealthOf(a), wealthOf(b), wealthOf(c)}
	post := [3]chain.Amount{800, 1000, 200}
	if got != post {
		t.Fatalf("τ settlement wealth %v, want %v (post-payment)", got, post)
	}
	if w.chain.TotalUnspent() != w.chain.Minted() {
		t.Fatal("value not conserved")
	}
}

// TestMultihopWithCommitteeCompletesNormally checks the happy path with
// committees: the payment completes, mirrors track the stage churn, and
// the channels remain usable.
func TestMultihopWithCommitteeCompletesNormally(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	c := w.node("carol", NodeConfig{})
	ra := w.node("alice-member", NodeConfig{})
	for _, pair := range [][2]*Node{{a, ra}, {a, b}, {b, c}, {b, ra}} {
		w.connect(pair[0], pair[1])
	}
	if err := a.FormCommittee([]*Node{ra}, 2); err != nil {
		t.Fatal(err)
	}
	w.until(func() bool { return a.Enclave().CommitteeReady() })

	idAB := w.openChannel(a, b)
	w.fundAndAssociate(a, b, idAB, 1000)
	idBC := w.openChannel(b, c)
	w.fundAndAssociate(b, c, idBC, 1000)

	done := false
	err := a.PayMultihop([][]cryptoutil.PublicKey{identityPath(a, b, c)}, 150, 1,
		func(ok bool, _ time.Duration, reason string) {
			if !ok {
				t.Fatalf("multihop failed: %s", reason)
			}
			done = true
		})
	if err != nil {
		t.Fatal(err)
	}
	w.run()
	if !done {
		t.Fatal("payment never completed")
	}
	// Alice's mirror matches her state after the stage churn.
	mirror, ok := ra.Enclave().MirrorState(a.Enclave().ChainID())
	if !ok {
		t.Fatal("no mirror")
	}
	if mirror.Channels[idAB].MyBal != a.Enclave().State().Channels[idAB].MyBal {
		t.Fatal("mirror diverged after multihop")
	}
	if a.Enclave().State().Channels[idAB].MyBal != 850 {
		t.Fatalf("alice balance %d, want 850", a.Enclave().State().Channels[idAB].MyBal)
	}
}
