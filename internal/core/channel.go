package core

import (
	"errors"
	"fmt"
	"math"

	"teechain/internal/chain"
	"teechain/internal/cryptoutil"
	"teechain/internal/wire"
)

// This file implements the Teechain payment channel protocol (Alg. 1):
// immediate channel creation, dynamic deposit approval, association and
// dissociation, payments, and cooperative termination triggers.

// NewDepositScript mints the script a new fund deposit must pay into:
// a fresh 1-of-1 key without a committee, or the committee's m-of-n
// multisignature over a fresh owner key plus each member's committee
// key (§6.1). The host places the funding transaction on the blockchain
// and then registers the confirmed deposit with RegisterDeposit.
func (e *Enclave) NewDepositScript() (chain.Script, error) {
	if e.state.Frozen {
		return chain.Script{}, ErrFrozen
	}
	own, err := e.newBtcKey()
	if err != nil {
		return chain.Script{}, err
	}
	if e.repl == nil || len(e.repl.members) < 2 {
		return chain.PayToKey(own.Public()), nil
	}
	if !e.repl.ready {
		return chain.Script{}, errors.New("core: committee not yet ready")
	}
	keys := []cryptoutil.PublicKey{own.Public()}
	for _, m := range e.repl.members[1:] {
		bk, ok := e.repl.memberBtcKeys[m]
		if !ok {
			return chain.Script{}, fmt.Errorf("core: missing committee key for member %s", m)
		}
		keys = append(keys, bk)
	}
	return chain.Multisig(e.repl.m, keys...), nil
}

// DepositInfoFor assembles the DepositInfo advertised to counterparties
// for a deposit paying into script at the given outpoint.
func (e *Enclave) DepositInfoFor(point chain.OutPoint, value chain.Amount, script chain.Script) wire.DepositInfo {
	info := wire.DepositInfo{Point: point, Value: value, Script: script}
	if e.repl != nil && len(e.repl.members) >= 2 && script.M >= 1 && len(script.Keys) > 1 {
		info.Committee = e.repl.chainID
		for _, m := range e.repl.members {
			info.Members = append(info.Members, wire.PathHop{Identity: m})
		}
	}
	return info
}

// RegisterDeposit records a confirmed on-chain deposit (newDeposit,
// Alg. 1 line 36). The enclave verifies it owns the deposit's first
// script key — the "assert btcPrivs(a_btc) exists" of the algorithm.
func (e *Enclave) RegisterDeposit(info wire.DepositInfo) (*Result, error) {
	if len(info.Script.Keys) == 0 {
		return nil, errors.New("core: deposit script has no keys")
	}
	if _, ok := e.btcKeys[info.Script.Keys[0].Address()]; !ok {
		return nil, errors.New("core: deposit does not pay to an enclave-owned key")
	}
	if info.Value <= 0 {
		return nil, fmt.Errorf("core: deposit value %d must be positive", info.Value)
	}
	return e.commit(&Op{Kind: OpRegisterDeposit, Deposit: info}, nil, nil)
}

// ReleaseDeposit spends a free deposit back to the owner's payout
// address (releaseDeposit, Alg. 1 line 42), returning the transaction
// for the host to complete (committee signatures) and submit.
func (e *Enclave) ReleaseDeposit(point chain.OutPoint) (*chain.Transaction, []SigNeed, *Result, error) {
	rec, ok := e.state.Deposits[point]
	if !ok {
		return nil, nil, nil, ErrUnknownDeposit
	}
	if !rec.Free || rec.Released || rec.Dissociating {
		return nil, nil, nil, fmt.Errorf("core: deposit %s is not free", point)
	}
	if e.cfg.PayoutKey.IsZero() {
		return nil, nil, nil, errors.New("core: no payout key configured")
	}
	tx := &chain.Transaction{
		Inputs:  []chain.TxIn{{Prev: point}},
		Outputs: []chain.TxOut{{Value: rec.Info.Value, Script: chain.PayToKey(e.cfg.PayoutKey)}},
	}
	res, err := e.commit(&Op{Kind: OpReleaseDeposit, Deposit: rec.Info}, nil, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	needs := e.signSettlementInputs(tx, []wire.DepositInfo{rec.Info})
	return tx, needs, res, nil
}

// RequestDepositApproval asks the peer to approve one of our free
// deposits for use in shared channels (approveMyDeposit, Alg. 1
// line 48).
func (e *Enclave) RequestDepositApproval(peer cryptoutil.PublicKey, point chain.OutPoint) (*Result, error) {
	if _, err := e.session(peer); err != nil {
		return nil, err
	}
	rec, ok := e.state.Deposits[point]
	if !ok {
		return nil, ErrUnknownDeposit
	}
	if !rec.Free || rec.Released {
		return nil, fmt.Errorf("core: deposit %s is not free", point)
	}
	if e.state.ApprovedMine[peer][point] {
		return nil, fmt.Errorf("core: deposit %s already approved by peer", point)
	}
	return &Result{Out: oneOut(peer, &wire.ApproveDeposit{Deposit: rec.Info})}, nil
}

func (e *Enclave) handleApproveDeposit(from cryptoutil.PublicKey, m *wire.ApproveDeposit) (*Result, error) {
	if byMe := e.state.ApprovedByMe[from]; byMe != nil {
		if _, ok := byMe[m.Deposit.Point]; ok {
			return nil, fmt.Errorf("core: deposit %s already approved", m.Deposit.Point)
		}
	}
	if err := m.Deposit.Script.Validate(); err != nil {
		return nil, err
	}
	// The enclave cannot read the blockchain (§4); ask the host to
	// verify the deposit's confirmation depth against local policy.
	return &Result{Events: []Event{EvDepositApprovalNeeded{Remote: from, Deposit: m.Deposit}}}, nil
}

// ConfirmRemoteDeposit is the host's answer to EvDepositApprovalNeeded
// after checking the blockchain: confirmations at or above the
// enclave's policy approve the deposit and notify the peer.
func (e *Enclave) ConfirmRemoteDeposit(peer cryptoutil.PublicKey, deposit wire.DepositInfo, confirmations uint64) (*Result, error) {
	if _, err := e.session(peer); err != nil {
		return nil, err
	}
	if confirmations < e.cfg.MinConfirmations {
		return nil, fmt.Errorf("core: deposit %s has %d confirmations, policy requires %d",
			deposit.Point, confirmations, e.cfg.MinConfirmations)
	}
	out := oneOut(peer, &wire.ApprovedDeposit{Point: deposit.Point})
	return e.commit(&Op{Kind: OpApproveRemote, Remote: peer, Deposit: deposit}, out, nil)
}

func (e *Enclave) handleApprovedDeposit(from cryptoutil.PublicKey, m *wire.ApprovedDeposit) (*Result, error) {
	rec, ok := e.state.Deposits[m.Point]
	if !ok {
		return nil, ErrUnknownDeposit
	}
	if e.state.ApprovedMine[from][m.Point] {
		return nil, fmt.Errorf("core: duplicate approval for %s", m.Point)
	}
	ev := []Event{EvDepositApproved{Remote: from, Point: m.Point}}
	return e.commit(&Op{Kind: OpApprovedMine, Remote: from, Deposit: rec.Info}, nil, ev)
}

// OpenChannel initiates a payment channel with an attested peer
// (newPayChannel, Alg. 1 line 18). No blockchain interaction occurs;
// the channel is usable as soon as the peer acks.
func (e *Enclave) OpenChannel(id wire.ChannelID, peer cryptoutil.PublicKey, myAddr cryptoutil.Address, temp bool) (*Result, error) {
	if _, err := e.session(peer); err != nil {
		return nil, err
	}
	tempFlag := 0
	if temp {
		tempFlag = 1
	}
	op := &Op{Kind: OpOpenChannel, Channel: id, Remote: peer, Addr1: myAddr, Count: tempFlag}
	out := oneOut(peer, &wire.ChannelOpen{Channel: id, MyAddress: myAddr})
	return e.commit(op, out, nil)
}

func (e *Enclave) handleChannelOpen(from cryptoutil.PublicKey, m *wire.ChannelOpen) (*Result, error) {
	if _, ok := e.state.Channels[m.Channel]; ok {
		return nil, fmt.Errorf("core: channel %s already exists", m.Channel)
	}
	// Record the proposal; the host decides whether to accept (and with
	// which settlement address) via AcceptChannel.
	return &Result{Events: []Event{EvChannelRequest{Channel: m.Channel, Remote: from, RemoteAddr: m.MyAddress}}}, nil
}

// AcceptChannel completes an inbound channel proposal with our
// settlement address.
func (e *Enclave) AcceptChannel(id wire.ChannelID, peer cryptoutil.PublicKey, remoteAddr, myAddr cryptoutil.Address, temp bool) (*Result, error) {
	if _, err := e.session(peer); err != nil {
		return nil, err
	}
	tempFlag := 0
	if temp {
		tempFlag = 1
	}
	open := &Op{Kind: OpOpenChannel, Channel: id, Remote: peer, Addr1: myAddr, Addr2: remoteAddr, Count: tempFlag}
	res, err := e.commit(open, nil, nil)
	if err != nil {
		return nil, err
	}
	ack := oneOut(peer, &wire.ChannelAck{Channel: id, MyAddress: myAddr, YoursAddress: remoteAddr})
	ev := []Event{EvChannelOpen{Channel: id, Remote: peer}}
	res2, err := e.commit(&Op{Kind: OpChannelOpened, Channel: id}, ack, ev)
	if err != nil {
		return nil, err
	}
	return res.merge(res2), nil
}

func (e *Enclave) handleChannelAck(from cryptoutil.PublicKey, m *wire.ChannelAck) (*Result, error) {
	c, ok := e.state.Channels[m.Channel]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownChannel, m.Channel)
	}
	if c.Remote != from {
		return nil, errors.New("core: channel ack from wrong peer")
	}
	if c.Open {
		return nil, fmt.Errorf("core: channel %s already open", m.Channel)
	}
	if m.YoursAddress != c.MyAddr {
		return nil, errors.New("core: channel ack address mismatch")
	}
	ev := []Event{EvChannelOpen{Channel: m.Channel, Remote: from}}
	return e.commit(&Op{Kind: OpChannelOpened, Channel: m.Channel, Addr2: m.MyAddress}, nil, ev)
}

// AssociateDeposit binds a free, peer-approved deposit to a channel
// (associateMyDeposit, Alg. 1 line 64). For 1-of-1 deposits the private
// key travels to the peer, sealed under the session key, so the peer
// can settle unilaterally (line 73).
func (e *Enclave) AssociateDeposit(id wire.ChannelID, point chain.OutPoint) (*Result, error) {
	c, err := e.state.openChannel(id)
	if err != nil {
		return nil, err
	}
	rec, ok := e.state.Deposits[point]
	if !ok {
		return nil, ErrUnknownDeposit
	}
	if !rec.Free || rec.Released || rec.Dissociating {
		return nil, fmt.Errorf("core: deposit %s is not free", point)
	}
	if !e.state.ApprovedMine[c.Remote][point] {
		return nil, fmt.Errorf("core: deposit %s not approved by peer", point)
	}
	sess, err := e.session(c.Remote)
	if err != nil {
		return nil, err
	}
	msg := &wire.AssociateDeposit{Channel: id, Deposit: rec.Info}
	if rec.Info.Committee == "" {
		kp, ok := e.btcKeys[rec.Info.Script.Keys[0].Address()]
		if !ok {
			return nil, errors.New("core: missing private key for 1-of-1 deposit")
		}
		enc, err := cryptoutil.SealDetached(sess.key, e.platform.Rand(), kp.PrivateBytes(), []byte(id))
		if err != nil {
			return nil, err
		}
		msg.EncPrivShare = enc
	}
	op := &Op{Kind: OpAssociateMine, Channel: id, Deposit: rec.Info}
	ev := []Event{EvDepositAssociated{Channel: id, Point: point, Mine: true}}
	return e.commit(op, oneOut(c.Remote, msg), ev)
}

func (e *Enclave) handleAssociateDeposit(from cryptoutil.PublicKey, m *wire.AssociateDeposit) (*Result, error) {
	c, err := e.state.openChannel(m.Channel)
	if err != nil {
		return nil, err
	}
	if c.Remote != from {
		return nil, errors.New("core: associate from wrong peer")
	}
	byMe := e.state.ApprovedByMe[from]
	info, ok := byMe[m.Deposit.Point]
	if !ok {
		return nil, fmt.Errorf("core: deposit %s was not approved by us", m.Deposit.Point)
	}
	if info.Value != m.Deposit.Value || !info.Script.Equal(m.Deposit.Script) {
		return nil, errors.New("core: associated deposit differs from approved deposit")
	}
	if len(m.EncPrivShare) > 0 {
		sess, err := e.session(from)
		if err != nil {
			return nil, err
		}
		raw, err := cryptoutil.OpenDetached(sess.key, m.EncPrivShare, []byte(m.Channel))
		if err != nil {
			return nil, fmt.Errorf("core: opening shared deposit key: %w", err)
		}
		kp, err := cryptoutil.KeyPairFromPrivateBytes(raw)
		if err != nil {
			return nil, fmt.Errorf("core: shared deposit key invalid: %w", err)
		}
		if kp.Public() != m.Deposit.Script.Keys[0] {
			return nil, errors.New("core: shared key does not match deposit script")
		}
		e.btcKeys[kp.Address()] = kp
	} else if m.Deposit.Committee == "" {
		return nil, errors.New("core: 1-of-1 deposit association without key share")
	}
	op := &Op{Kind: OpAssociateTheirs, Channel: m.Channel, Deposit: m.Deposit}
	ev := []Event{EvDepositAssociated{Channel: m.Channel, Point: m.Deposit.Point, Mine: false}}
	return e.commit(op, nil, ev)
}

// DissociateDeposit removes one of our deposits from a channel
// (dissociateDeposit, Alg. 1 line 90); the deposit becomes free when
// the peer acknowledges and destroys its key copy.
func (e *Enclave) DissociateDeposit(id wire.ChannelID, point chain.OutPoint) (*Result, error) {
	c, err := e.state.openChannel(id)
	if err != nil {
		return nil, err
	}
	if c.Stage != MhIdle {
		return nil, ErrChannelLocked
	}
	rec, ok := e.state.Deposits[point]
	if !ok {
		return nil, ErrUnknownDeposit
	}
	op := &Op{Kind: OpDissociateStart, Channel: id, Deposit: rec.Info}
	out := oneOut(c.Remote, &wire.DissociateDeposit{Channel: id, Point: point})
	return e.commit(op, out, nil)
}

func (e *Enclave) handleDissociateDeposit(from cryptoutil.PublicKey, m *wire.DissociateDeposit) (*Result, error) {
	c, err := e.state.openChannel(m.Channel)
	if err != nil {
		return nil, err
	}
	if c.Remote != from {
		return nil, errors.New("core: dissociate from wrong peer")
	}
	if c.Stage != MhIdle {
		return nil, ErrChannelLocked
	}
	i := c.findDep(c.RemoteDeps, m.Point)
	if i < 0 {
		return nil, ErrUnknownDeposit
	}
	info := c.RemoteDeps[i]
	// Destroy our copy of the shared private key (Alg. 1 line 104).
	if info.Committee == "" && len(info.Script.Keys) > 0 {
		delete(e.btcKeys, info.Script.Keys[0].Address())
	}
	op := &Op{Kind: OpDissociateTheirs, Channel: m.Channel, Deposit: info}
	out := oneOut(from, &wire.DissociateAck{Channel: m.Channel, Point: m.Point})
	ev := []Event{EvDepositDissociated{Channel: m.Channel, Point: m.Point, Mine: false}}
	res, err := e.commit(op, out, ev)
	if err != nil {
		return nil, err
	}
	return e.maybeCloseNeutral(m.Channel, res)
}

func (e *Enclave) handleDissociateAck(from cryptoutil.PublicKey, m *wire.DissociateAck) (*Result, error) {
	// The channel may already have closed off-chain (cooperative
	// termination drains deposits before the final ack arrives), so the
	// ack is validated against the channel record, not its open state.
	c, ok := e.state.Channels[m.Channel]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownChannel, m.Channel)
	}
	if c.Remote != from {
		return nil, errors.New("core: dissociate ack from wrong peer")
	}
	rec, ok := e.state.Deposits[m.Point]
	if !ok {
		return nil, ErrUnknownDeposit
	}
	op := &Op{Kind: OpDissociateAck, Channel: m.Channel, Deposit: rec.Info}
	ev := []Event{EvDepositDissociated{Channel: m.Channel, Point: m.Point, Mine: true}}
	res, err := e.commit(op, nil, ev)
	if err != nil {
		return nil, err
	}
	return e.maybeCloseNeutral(m.Channel, res)
}

// maybeCloseNeutral finishes a cooperative off-chain termination once
// every deposit has drained from a close-pending channel.
func (e *Enclave) maybeCloseNeutral(id wire.ChannelID, res *Result) (*Result, error) {
	c, ok := e.state.Channels[id]
	if !ok || !c.ClosePending || c.Closed {
		return res, nil
	}
	if len(c.MyDeps) != 0 || len(c.RemoteDeps) != 0 {
		return res, nil
	}
	ev := []Event{
		EvChannelClosed{Channel: id, OffChain: true},
		EvSettlementReady{Channel: id, OffChain: true},
	}
	res2, err := e.commit(&Op{Kind: OpCloseChannel, Channel: id}, nil, ev)
	if err != nil {
		return nil, err
	}
	return res.merge(res2), nil
}

// Pay sends value over a channel (pay, Alg. 1 line 82). Count > 1
// represents a client-side batch of that many logical payments whose
// total is amount.
func (e *Enclave) Pay(id wire.ChannelID, amount chain.Amount, count int) (*Result, error) {
	if amount <= 0 || count < 1 {
		return nil, fmt.Errorf("core: invalid payment amount %d (count %d)", amount, count)
	}
	c, err := e.state.openChannel(id)
	if err != nil {
		return nil, err
	}
	if c.Resuming {
		return nil, fmt.Errorf("core: channel %s is reconciling after a crash", id)
	}
	op := e.pools.getOp()
	op.Kind, op.Channel, op.Amount, op.Count = OpPaySend, id, amount, count
	m := e.pools.getPayMsg()
	m.Channel, m.Amount, m.Count = id, amount, count
	res := e.pools.getResult()
	res.Out = append(res.Out, Outbound{To: c.Remote, Msg: m})
	return e.commitFast(op, res)
}

func (e *Enclave) handlePay(from cryptoutil.PublicKey, m *wire.Pay) (*Result, error) {
	c, err := e.state.openChannel(m.Channel)
	if err != nil {
		return nil, err
	}
	if c.Remote != from {
		return nil, errors.New("core: payment from wrong peer")
	}
	if m.Amount <= 0 || m.Count < 1 {
		return nil, fmt.Errorf("core: invalid payment amount %d", m.Amount)
	}
	// A payment can race a multi-hop lock on the same channel: the
	// sender debited optimistically before our lock reached it. Reject
	// with a nack so the sender reverses and retries; ordering through
	// any pending replication keeps acks and nacks FIFO per channel.
	if c.Stage != MhIdle || c.ClosePending {
		nack := &wire.PayNack{Channel: m.Channel, Amount: m.Amount, Count: m.Count, Reason: "channel locked"}
		return e.deferBehindPending(from, nack), nil
	}
	op := e.pools.getOp()
	op.Kind, op.Channel, op.Amount, op.Count = OpPayRecv, m.Channel, m.Amount, m.Count
	ack := e.pools.getPayAckMsg()
	ack.Channel, ack.Amount, ack.Count = m.Channel, m.Amount, m.Count
	res := e.pools.getResult()
	res.Out = append(res.Out, Outbound{To: from, Msg: ack})
	res.pay = payEvent{kind: PayReceived, channel: m.Channel, amount: m.Amount, count: m.Count}
	return e.commitFast(op, res)
}

// sumBatch validates a payment batch and returns its total: every
// amount must be positive and the sum must not overflow — a wrapped
// negative total would slip through Apply's balance guards
// (`bal < amount` is vacuously false for negative amounts) and corrupt
// channel state, so both the sender entry point and the wire handler
// reject it here.
func sumBatch(amounts []chain.Amount) (chain.Amount, error) {
	if len(amounts) == 0 {
		return 0, errors.New("core: empty payment batch")
	}
	// Enforced before any state commit: a batch too large to frame
	// would be debited by the sender, then dropped at encode time,
	// diverging the channel (see wire.MaxPayBatch).
	if len(amounts) > wire.MaxPayBatch {
		return 0, fmt.Errorf("core: payment batch of %d exceeds %d", len(amounts), wire.MaxPayBatch)
	}
	var total chain.Amount
	for _, a := range amounts {
		if a <= 0 {
			return 0, fmt.Errorf("core: invalid payment amount %d in batch", a)
		}
		if total > math.MaxInt64-a {
			return 0, errors.New("core: payment batch total overflows")
		}
		total += a
	}
	return total, nil
}

// PayBatch sends len(amounts) payments over a channel in one protocol
// message (§7.2 batching): the frame, freshness token, and enclave
// entry are paid once for the whole batch instead of per payment.
// Unlike Pay with Count > 1 the payments may carry distinct amounts.
// The batch applies atomically on both sides — the receiver either
// credits all of it or nacks the total.
func (e *Enclave) PayBatch(id wire.ChannelID, amounts []chain.Amount) (*Result, error) {
	total, err := sumBatch(amounts)
	if err != nil {
		return nil, err
	}
	c, err := e.state.openChannel(id)
	if err != nil {
		return nil, err
	}
	if c.Resuming {
		return nil, fmt.Errorf("core: channel %s is reconciling after a crash", id)
	}
	op := e.pools.getOp()
	op.Kind, op.Channel, op.Amount, op.Count = OpPaySend, id, total, len(amounts)
	m := e.pools.getPayBatchMsg()
	m.Channel = id
	m.Amounts = append(m.Amounts[:0], amounts...)
	res := e.pools.getResult()
	res.Out = append(res.Out, Outbound{To: c.Remote, Msg: m})
	return e.commitFast(op, res)
}

func (e *Enclave) handlePayBatch(from cryptoutil.PublicKey, m *wire.PayBatch) (*Result, error) {
	c, err := e.state.openChannel(m.Channel)
	if err != nil {
		return nil, err
	}
	if c.Remote != from {
		return nil, errors.New("core: payment from wrong peer")
	}
	total, err := sumBatch(m.Amounts)
	if err != nil {
		return nil, err
	}
	n := len(m.Amounts)
	// Same race as handlePay: the sender debited optimistically before a
	// multi-hop lock reached it. Nack the whole batch so it reverses.
	if c.Stage != MhIdle || c.ClosePending {
		nack := &wire.PayNack{Channel: m.Channel, Amount: total, Count: n, Reason: "channel locked"}
		return e.deferBehindPending(from, nack), nil
	}
	op := e.pools.getOp()
	op.Kind, op.Channel, op.Amount, op.Count = OpPayRecv, m.Channel, total, n
	ack := e.pools.getPayBatchAckMsg()
	ack.Channel, ack.Total, ack.Count = m.Channel, total, n
	res := e.pools.getResult()
	res.Out = append(res.Out, Outbound{To: from, Msg: ack})
	res.pay = payEvent{kind: PayReceived, channel: m.Channel, amount: total, count: n}
	return e.commitFast(op, res)
}

func (e *Enclave) handlePayBatchAck(from cryptoutil.PublicKey, m *wire.PayBatchAck) (*Result, error) {
	c, ok := e.state.Channels[m.Channel]
	if !ok || c.Remote != from {
		return nil, fmt.Errorf("%w: %s", ErrUnknownChannel, m.Channel)
	}
	// Acks drive host-side counters (uint64 adds); a forged negative
	// Count/Total would wrap them and fake AwaitAcked completion.
	if m.Count < 1 || m.Total <= 0 {
		return nil, fmt.Errorf("core: invalid batch ack (%d payments, total %d)", m.Count, m.Total)
	}
	res := e.pools.getResult()
	res.pay = payEvent{kind: PayAcked, channel: m.Channel, amount: m.Total, count: m.Count}
	// Batches are a host-level transport optimisation; outsourced users
	// (§3) issue single payments, so no ack relay happens here.
	return res, nil
}

func (e *Enclave) handlePayNack(from cryptoutil.PublicKey, m *wire.PayNack) (*Result, error) {
	c, ok := e.state.Channels[m.Channel]
	if !ok || c.Remote != from {
		return nil, fmt.Errorf("%w: %s", ErrUnknownChannel, m.Channel)
	}
	// A forged non-positive amount would bypass Apply's balance guard
	// and wrap the revert; a forged count wraps host counters.
	if m.Amount <= 0 || m.Count < 1 {
		return nil, fmt.Errorf("core: invalid nack (%d payments, amount %d)", m.Count, m.Amount)
	}
	op := e.pools.getOp()
	op.Kind, op.Channel, op.Amount, op.Count = OpPayRevert, m.Channel, m.Amount, m.Count
	res := e.pools.getResult()
	res.pay = payEvent{kind: PayNacked, channel: m.Channel, amount: m.Amount, count: m.Count, reason: m.Reason}
	return e.commitFast(op, res)
}

func (e *Enclave) handlePayAck(from cryptoutil.PublicKey, m *wire.PayAck) (*Result, error) {
	c, ok := e.state.Channels[m.Channel]
	if !ok || c.Remote != from {
		return nil, fmt.Errorf("%w: %s", ErrUnknownChannel, m.Channel)
	}
	if m.Count < 1 || m.Amount <= 0 {
		return nil, fmt.Errorf("core: invalid ack (%d payments, amount %d)", m.Count, m.Amount)
	}
	res := e.pools.getResult()
	res.pay = payEvent{kind: PayAcked, channel: m.Channel, amount: m.Amount, count: m.Count}
	// Relay the acknowledgement to an outsourced user if one issued
	// this payment (§3).
	if len(e.outsourcePending) != 0 {
		res.Out = append(res.Out, e.outsourceAckHook(m.Channel)...)
	}
	return res, nil
}
