// Replication log: the dedicated concurrency domain of a chain
// primary (Alg. 3 with the chain-replication batching/pipelining of
// van Renesse & Schneider, OSDI'04).
//
// A replicated commit applies the op to the primary's state and then
// appends the op — together with its withheld externally visible
// effects (outbound messages, events, the unboxed payment outcome) — to
// the chain's replication log. The log has its own mutex, so payment
// lanes (which hold the host's wide lock only in READ mode, see
// concurrent.go) can commit replicated payments concurrently: the lane
// lock orders ops per channel, the log mutex orders the global append,
// and ops on different channels commute, so backups that apply in log
// order converge to the primary's state.
//
// Two delivery modes share the log:
//
//   - immediate (the default; the simulator's mode): every commit emits
//     one ReplUpdate frame synchronously and every backup ack releases
//     exactly one entry, preserving the seed's per-update wire behavior
//     bit for bit (harness determinism tests pin this);
//   - pipelined (socket hosts opt in via EnableReplPipeline): commits
//     only append; a host-side flusher drains the log into ReplBatch
//     frames (payment ops) and solo ReplUpdate frames (everything
//     else), pipelining batches down the chain without waiting, bounded
//     by an in-flight window; the tail acknowledges cumulatively and
//     one ReplBatchAck releases a whole run of withheld effects.
//
// Entries are pooled and recycled on release, so a replicated payment
// commit allocates nothing in steady state.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"teechain/internal/cryptoutil"
	"teechain/internal/wire"
)

// replMaxPending bounds committed-but-unacknowledged ops (queued plus
// in flight). Commits beyond it fail with ErrReplBacklog instead of
// growing the log without bound when the chain stalls — the host
// surfaces the error and the caller retries.
const replMaxPending = 1 << 17

// ErrReplBacklog reports that the replication chain has fallen too far
// behind for further optimistic commits.
var ErrReplBacklog = errors.New("core: replication backlog full")

// replEntry is one committed, not-yet-acknowledged state update with
// its withheld effects. Pooled; out and events keep capacity across
// journeys.
type replEntry struct {
	seq    uint64
	op     *Op
	out    []Outbound
	events []Event
	pay    payEvent
	// tauPending marks a multi-hop sign-stage op whose committee τ
	// signatures have not been folded in yet: a cumulative ReplBatchAck
	// may not release it (the per-sequence ReplAck carrying the
	// signatures must land first), see advanceAckLocked.
	tauPending bool
}

// replLog is the commit pipeline state of a chain primary and/or a
// durable enclave: one ordered sequence of committed ops with their
// withheld effects, consumed by up to two independent cursors — the
// replication ack cursor (ackSeq) and the WAL fsync cursor (syncSeq).
// An entry's effects release only once every enabled cursor has passed
// it (releaseTargetLocked), which is exactly the paper's commit-before-
// ack ordering for both replication and stable storage. All fields are
// guarded by mu except backlog (atomic, read before Apply so an
// over-full log rejects commits without taking the lock) and
// pipelined/notify/durable (written once under the wide lock before any
// concurrent commit exists).
type replLog struct {
	mu sync.Mutex

	// pipelined switches commits from emit-per-op to append-for-flush.
	pipelined bool
	// notify, when set, wakes the host's flusher(s) after an append.
	// Called outside mu; must not block.
	notify func()
	// durable gates releases on the WAL fsync cursor (syncSeq). A
	// durable log is always pipelined.
	durable bool

	nextSeq  uint64 // last committed sequence number
	flushSeq uint64 // last sequence handed to the transport (== nextSeq when immediate)
	ackSeq   uint64 // last sequence cumulatively acknowledged by the chain
	walSeq   uint64 // last sequence handed to the WAL flusher
	syncSeq  uint64 // last sequence fsynced to the WAL
	relSeq   uint64 // last sequence whose effects were released

	// Retransmission cursor (self-healing replication): when a mirror
	// NACKs a gap — or the stall watchdog fires — the flusher re-serves
	// seqs retxSeq+1..retxEnd from the retained entries with the Retx
	// flag set, before any new flushing. Inactive when retxSeq >= retxEnd.
	retxSeq uint64
	retxEnd uint64
	// batchAckHigh is the highest cumulative ReplBatchAck seen. It can
	// run ahead of ackSeq when an earlier per-sequence ReplAck (τ
	// signatures) was lost: ackSeq holds at the unfolded entry until a
	// retransmission recovers the signatures, then resumes to here.
	batchAckHigh uint64
	// Self-healing telemetry, surfaced through ReplStats.
	nacksIn uint64 // ReplNacks received from the chain
	retxOps uint64 // ops re-served from the log

	// entries[head:] holds the entries for seqs relSeq+1..nextSeq in
	// order; popping advances head and compacts like chanRuntime.
	entries []*replEntry
	head    int

	free    []*replEntry
	backlog atomic.Int64 // nextSeq - relSeq, maintained on append/release
}

func (l *replLog) getEntryLocked() *replEntry {
	if k := len(l.free); k > 0 {
		e := l.free[k-1]
		l.free = l.free[:k-1]
		return e
	}
	return &replEntry{}
}

func (l *replLog) putEntryLocked(ent *replEntry) {
	for i := range ent.out {
		ent.out[i] = Outbound{}
	}
	for i := range ent.events {
		ent.events[i] = nil
	}
	ent.out = ent.out[:0]
	ent.events = ent.events[:0]
	ent.op = nil
	ent.pay = payEvent{}
	ent.seq = 0
	ent.tauPending = false
	l.free = append(l.free, ent)
}

// admit reports whether another commit may enter the log. Approximate
// by design (concurrent lanes may overshoot by a handful), checked
// BEFORE State.Apply so a rejected commit leaves no divergence between
// the primary's state and the replication stream.
func (l *replLog) admit() error {
	if l.backlog.Load() >= replMaxPending {
		return ErrReplBacklog
	}
	return nil
}

// append assigns the next sequence number to a pooled entry built by
// the caller and enqueues it. Returns the sequence and, in immediate
// mode, true to tell the caller to emit the ReplUpdate itself.
func (l *replLog) append(ent *replEntry) (seq uint64, immediate bool) {
	l.mu.Lock()
	l.nextSeq++
	seq = l.nextSeq
	ent.seq = seq
	l.entries = append(l.entries, ent)
	if !l.pipelined {
		l.flushSeq = l.nextSeq
	}
	l.backlog.Add(1)
	notify := l.pipelined && l.notify != nil
	l.mu.Unlock()
	if notify {
		l.notify()
	}
	return seq, !l.pipelined
}

// entryAt returns the queued entry for seq, or nil. Caller holds mu.
func (l *replLog) entryAtLocked(seq uint64) *replEntry {
	if seq <= l.relSeq || seq > l.nextSeq {
		return nil
	}
	return l.entries[l.head+int(seq-l.relSeq-1)]
}

// releaseTargetLocked computes how far withheld effects may release:
// the committed frontier, clamped by the chain ack cursor when the op
// was replicated and by the WAL fsync cursor when the log is durable.
// Caller holds mu.
func (l *replLog) releaseTargetLocked(replicated bool) uint64 {
	t := l.nextSeq
	if replicated && l.ackSeq < t {
		t = l.ackSeq
	}
	if l.durable && l.syncSeq < t {
		t = l.syncSeq
	}
	return t
}

// popLocked removes and returns the oldest entry (seq relSeq+1),
// advancing relSeq. Caller holds mu and has checked it exists.
func (l *replLog) popLocked() *replEntry {
	ent := l.entries[l.head]
	l.entries[l.head] = nil
	l.head++
	l.relSeq++
	l.backlog.Add(-1)
	if l.head == len(l.entries) {
		l.entries = l.entries[:0]
		l.head = 0
	} else if l.head >= 64 && l.head*2 >= len(l.entries) {
		live := copy(l.entries, l.entries[l.head:])
		for i := live; i < len(l.entries); i++ {
			l.entries[i] = nil
		}
		l.entries = l.entries[:live]
		l.head = 0
	}
	return ent
}

// attachTail appends out behind the newest pending entry's effects,
// preserving per-channel FIFO between committed responses (PayAck) and
// uncommitted ones (PayNack). Returns false when nothing is pending and
// the message should be sent immediately.
func (l *replLog) attachTail(out Outbound) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.head >= len(l.entries) {
		return false
	}
	ent := l.entries[len(l.entries)-1]
	ent.out = append(ent.out, out)
	return true
}

// clear drops every pending entry (freeze). Entries are NOT recycled:
// their ops may still ride in-flight replication messages.
func (l *replLog) clear() {
	l.mu.Lock()
	for i := range l.entries {
		l.entries[i] = nil
	}
	l.entries = l.entries[:0]
	l.head = 0
	l.ackSeq = l.nextSeq
	l.flushSeq = l.nextSeq
	l.walSeq = l.nextSeq
	l.syncSeq = l.nextSeq
	l.relSeq = l.nextSeq
	l.batchAckHigh = l.nextSeq
	l.retxSeq = 0
	l.retxEnd = 0
	l.backlog.Store(0)
	l.mu.Unlock()
}

// releaseTo pops every entry with seq <= target, merging its withheld
// effects into res (in sequence order) and recycling entries and hot
// ops. Same-channel PayReceived outcomes merge into one unboxed event
// (hosts only count them); anything else that cannot share the unboxed
// slot is boxed. Caller computed target via releaseTargetLocked (or
// validated it against the cursors directly).
func (e *Enclave) releaseTo(l *replLog, target uint64, res *Result) {
	l.mu.Lock()
	for l.relSeq < target {
		ent := l.popLocked()
		res.Out = append(res.Out, ent.out...)
		res.Events = append(res.Events, ent.events...)
		if ent.pay.kind != PayNone {
			if res.pay.kind == PayNone {
				res.pay = ent.pay
			} else if res.pay.kind == PayReceived && ent.pay.kind == PayReceived &&
				res.pay.channel == ent.pay.channel {
				res.pay.amount += ent.pay.amount
				res.pay.count += ent.pay.count
			} else {
				res.Events = append(res.Events, ent.pay.box())
			}
		}
		if ent.op != nil && hotOp(ent.op) {
			e.pools.putOp(ent.op)
		}
		l.putEntryLocked(ent)
	}
	l.mu.Unlock()
}

// EnableReplPipeline switches this enclave's future replication chain
// to pipelined delivery: commits append to the log and the host's
// flusher (notify wakes it) drains batches via ReplNextFlush. Must be
// called under the host's wide lock before FormCommittee.
func (e *Enclave) EnableReplPipeline(notify func()) {
	e.replPipelined = true
	e.replNotify = notify
	if e.repl != nil {
		l := e.repl.log
		l.pipelined = true
		if l.durable && l.notify != nil && notify != nil {
			// Recovered durable committee: the adopted log must wake
			// both the WAL flusher and the replication flusher.
			walNotify := l.notify
			l.notify = func() { walNotify(); notify() }
		} else {
			l.notify = notify
		}
	}
}

// ReplPipelined reports whether the replication chain delivers in
// pipelined (batched) mode.
func (e *Enclave) ReplPipelined() bool {
	return e.repl != nil && e.repl.log.pipelined
}

// ReplStats is a snapshot of the replication pipeline, surfaced through
// the host's "stats committee" control command.
type ReplStats struct {
	Chain       string
	Pipelined   bool
	NextSeq     uint64 // last committed op
	FlushSeq    uint64 // last op handed to the transport
	AckSeq      uint64 // last op acknowledged by the whole chain
	Queued      int    // committed, not yet flushed
	Window      int    // flushed, not yet acknowledged
	Frozen      bool   // the owner chain is frozen
	NacksIn     uint64 // gap NACKs received from the chain
	Retransmits uint64 // ops re-served from the log (self-healing)
}

// ReplStats snapshots the primary's replication log; ok is false when
// no committee is formed.
func (e *Enclave) ReplStats() (ReplStats, bool) {
	if e.repl == nil {
		return ReplStats{}, false
	}
	l := e.repl.log
	l.mu.Lock()
	st := ReplStats{
		Chain:       e.repl.chainID,
		Pipelined:   l.pipelined,
		NextSeq:     l.nextSeq,
		FlushSeq:    l.flushSeq,
		AckSeq:      l.ackSeq,
		Queued:      int(l.nextSeq - l.flushSeq),
		Window:      int(l.flushSeq - l.ackSeq),
		Frozen:      e.state.Frozen,
		NacksIn:     l.nacksIn,
		Retransmits: l.retxOps,
	}
	l.mu.Unlock()
	return st, true
}

// replBatchKind maps a batchable op kind to its wire code (0 = not
// batchable; such ops flush as solo ReplUpdate frames).
func replBatchKind(k OpKind) uint8 {
	switch k {
	case OpPaySend:
		return wire.ReplOpPaySend
	case OpPayRecv:
		return wire.ReplOpPayRecv
	case OpPayRevert:
		return wire.ReplOpPayRevert
	}
	return 0
}

// replOpKind is the inverse mapping, validating the wire code.
func replOpKind(k uint8) (OpKind, bool) {
	switch k {
	case wire.ReplOpPaySend:
		return OpPaySend, true
	case wire.ReplOpPayRecv:
		return OpPayRecv, true
	case wire.ReplOpPayRevert:
		return OpPayRevert, true
	}
	return 0, false
}

// ReplNextFlush hands the host's replication flusher its next frame: a
// run of consecutive payment ops packed into batch (reused across
// calls), or a solo *wire.ReplUpdate for ops that cannot batch
// (multi-hop stages need per-sequence τ-signature piggybacking).
// Returns n == 0 when nothing is flushable — the log is drained, or
// flushed-but-unacknowledged ops already fill maxWindow (the pipelining
// backpressure bound). A scheduled retransmission (ReplNack or
// ReplRetransmitStart) is served first, Retx-flagged, from the retained
// entries; retransmissions ignore maxWindow because their ops are
// already inside the flushed window. Caller holds the wide lock in read
// mode.
func (e *Enclave) ReplNextFlush(batch *wire.ReplBatch, maxOps, maxWindow int) (to cryptoutil.PublicKey, msg wire.Message, n int) {
	if e.repl == nil || e.state.Frozen {
		return to, nil, 0
	}
	backup, ok := e.repl.backup()
	if !ok {
		return to, nil, 0
	}
	l := e.repl.log
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.pipelined {
		return to, nil, 0
	}
	if maxOps > wire.MaxReplBatch {
		maxOps = wire.MaxReplBatch
	}
	// Retransmission first: acknowledged ops need no re-serving, so the
	// cursor fast-forwards past acks that landed since the NACK.
	if l.retxSeq < l.ackSeq {
		l.retxSeq = l.ackSeq
	}
	if l.retxEnd > l.flushSeq {
		l.retxEnd = l.flushSeq
	}
	if l.retxSeq < l.retxEnd {
		first := l.retxSeq + 1
		ent := l.entryAtLocked(first)
		if kind := replBatchKind(ent.op.Kind); kind == 0 {
			l.retxSeq++
			l.retxOps++
			return backup, &wire.ReplUpdate{Chain: e.repl.chainID, Seq: first, Op: ent.op, Retx: true}, 1
		}
		batch.Chain = e.repl.chainID
		batch.FirstSeq = first
		batch.Retx = true
		batch.Ops = batch.Ops[:0]
		for len(batch.Ops) < maxOps && l.retxSeq < l.retxEnd {
			ent := l.entryAtLocked(l.retxSeq + 1)
			kind := replBatchKind(ent.op.Kind)
			if kind == 0 {
				break
			}
			batch.Ops = append(batch.Ops, wire.ReplBatchOp{
				Kind:    kind,
				Channel: ent.op.Channel,
				Amount:  ent.op.Amount,
				Count:   ent.op.Count,
			})
			l.retxSeq++
			l.retxOps++
		}
		return backup, batch, len(batch.Ops)
	}
	if l.flushSeq >= l.nextSeq || int(l.flushSeq-l.ackSeq) >= maxWindow {
		return to, nil, 0
	}
	first := l.flushSeq + 1
	ent := l.entryAtLocked(first)
	if kind := replBatchKind(ent.op.Kind); kind == 0 {
		// Solo flush: one cold op as a classic per-sequence update.
		l.flushSeq++
		return backup, &wire.ReplUpdate{Chain: e.repl.chainID, Seq: first, Op: ent.op}, 1
	}
	batch.Chain = e.repl.chainID
	batch.FirstSeq = first
	batch.Retx = false
	batch.Ops = batch.Ops[:0]
	for len(batch.Ops) < maxOps && l.flushSeq < l.nextSeq {
		ent := l.entryAtLocked(l.flushSeq + 1)
		kind := replBatchKind(ent.op.Kind)
		if kind == 0 {
			break // cold op: ends the run, flushes solo next call
		}
		batch.Ops = append(batch.Ops, wire.ReplBatchOp{
			Kind:    kind,
			Channel: ent.op.Channel,
			Amount:  ent.op.Amount,
			Count:   ent.op.Count,
		})
		l.flushSeq++
	}
	return backup, batch, len(batch.Ops)
}

// ReplRewindFlush un-flushes the last n flushed-but-unacknowledged ops
// after the host failed to hand their frame to the transport (outbound
// queue full, encode failure): the entries are still in the window, so
// rewinding flushSeq re-offers them to the next ReplNextFlush. Safe
// because the frame never left the host — no ack for those sequences
// can be in flight, and the freshness counter the discarded frame
// consumed is just a gap the receiver's anti-replay window skips.
func (e *Enclave) ReplRewindFlush(n int) {
	if e.repl == nil || n <= 0 {
		return
	}
	l := e.repl.log
	l.mu.Lock()
	if un := uint64(n); l.flushSeq >= un && l.flushSeq-un >= l.ackSeq {
		l.flushSeq -= un
	}
	l.mu.Unlock()
}

// ReplRewindRetx is ReplRewindFlush for a retransmitted frame the host
// failed to hand to the transport: it re-offers the last n re-served
// ops by rewinding the retransmit cursor instead of the flush cursor.
func (e *Enclave) ReplRewindRetx(n int) {
	if e.repl == nil || n <= 0 {
		return
	}
	l := e.repl.log
	l.mu.Lock()
	if un := uint64(n); l.retxSeq >= un && l.retxSeq-un >= l.ackSeq {
		l.retxSeq -= un
	}
	l.mu.Unlock()
}

// ReplRetransmitStart schedules a retransmission of the entire
// unacknowledged flushed window (ackSeq+1..flushSeq) from the retained
// log entries. The stall watchdog calls this as its first, cheap heal
// step — a lost frame or lost ack recovers from the log without the
// durable wholesale resync. Returns false when there is nothing to
// re-serve.
func (e *Enclave) ReplRetransmitStart() bool {
	if e.repl == nil || e.state.Frozen {
		return false
	}
	l := e.repl.log
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.pipelined || l.ackSeq >= l.flushSeq {
		return false
	}
	if l.retxSeq < l.ackSeq {
		l.retxSeq = l.ackSeq
	}
	if l.retxSeq < l.retxEnd {
		// A retransmission is still being served; restarting it from
		// ackSeq would re-serve the same prefix on every watchdog trip,
		// flooding a slow link instead of healing it. Let the flusher
		// finish the round — the next trip re-arms if it bought nothing.
		return false
	}
	l.retxSeq = l.ackSeq
	l.retxEnd = l.flushSeq
	return true
}

// advanceAckLocked advances the cumulative ack cursor toward the
// highest cumulative batch ack seen, stopping at any entry whose
// committee τ signatures are still outstanding: a cumulative ack must
// not release a sign-stage op before its per-sequence ReplAck folds the
// signatures in (the deferred sign-stage message would depart
// unsigned). Caller holds mu.
func (l *replLog) advanceAckLocked() {
	for l.ackSeq < l.batchAckHigh {
		ent := l.entryAtLocked(l.ackSeq + 1)
		if ent == nil || ent.tauPending {
			break
		}
		l.ackSeq++
	}
}

// --- Backup side: batch application ---

// handleReplBatch applies a batched run of payment ops to the mirror,
// relays it down the chain, and (at the tail) acknowledges
// cumulatively. Sequence discipline is exactly-next with self-healing
// (repl_heal.go): a batch whose ops were all seen already is a
// transport redelivery — dropped, or answered with a fresh cumulative
// ack when Retx-flagged (lost-ack repair); a batch ahead of sequence is
// buffered and the gap NACKed upstream; an overlapping batch has its
// already-applied prefix digest-verified (divergence freezes) and only
// the suffix applied. Freeze is reserved for genuine divergence: forged
// ops, apply failures, and conflicting payloads at committed sequences.
func (e *Enclave) handleReplBatch(from cryptoutil.PublicKey, m *wire.ReplBatch) (*Result, error) {
	b, ok := e.backups[m.Chain]
	if !ok {
		return nil, fmt.Errorf("core: not a member of chain %s", m.Chain)
	}
	if b.frozen {
		return nil, fmt.Errorf("core: chain %s is frozen", m.Chain)
	}
	if from != b.prev() {
		return nil, fmt.Errorf("core: replication batch from non-predecessor %s", from)
	}
	n := len(m.Ops)
	if n < 1 || n > wire.MaxReplBatch {
		return nil, fmt.Errorf("core: replication batch of %d ops", n)
	}
	last := m.FirstSeq + uint64(n) - 1
	if last < m.FirstSeq {
		return nil, errors.New("core: replication batch sequence range overflows")
	}
	next, hasNext := b.next()
	if last <= b.lastSeq {
		// Whole-batch duplicate: a redelivered frame after a connection
		// handover, or a retransmission that crossed the ack it repairs.
		// The payload must still match what was applied.
		if reason := b.verifyBatchOverlap(m.FirstSeq, m.Ops); reason != "" {
			return e.freezeChainLocal(b, reason)
		}
		if m.Retx {
			// Lost-ack repair: the primary would not re-serve acked
			// sequences, so the ack must have been lost downstream of
			// here — relay (middle) or re-acknowledge (tail).
			if hasNext {
				return &Result{Out: oneOut(next, m)}, nil
			}
			return &Result{Out: oneOut(b.prev(), &wire.ReplBatchAck{Chain: m.Chain, Seq: b.lastSeq})}, nil
		}
		return nil, fmt.Errorf("core: duplicate replication batch %d..%d (have %d)", m.FirstSeq, last, b.lastSeq)
	}
	if m.FirstSeq > b.lastSeq+1 {
		// Ahead of sequence: the frames in between were lost or
		// reordered. Buffer and report the gap instead of freezing.
		return e.replHold(b, replHeld{
			firstSeq: m.FirstSeq,
			ops:      append([]wire.ReplBatchOp(nil), m.Ops...),
			retx:     m.Retx,
		})
	}
	// Contiguous (possibly overlapping) run: verify the applied prefix,
	// apply the suffix.
	if reason := b.verifyBatchOverlap(m.FirstSeq, m.Ops); reason != "" {
		return e.freezeChainLocal(b, reason)
	}
	if reason := e.applyBatchSuffix(b, m.FirstSeq, m.Ops); reason != "" {
		return e.freezeChainLocal(b, reason)
	}
	res := &Result{}
	if hasNext {
		res.Out = append(res.Out, Outbound{To: next, Msg: m})
	}
	ackPending := !hasNext
	if reason := e.replDrainHeld(b, res, &ackPending); reason != "" {
		return e.freezeMerged(b, res, reason)
	}
	if ackPending {
		res.Out = append(res.Out, Outbound{To: b.prev(), Msg: &wire.ReplBatchAck{Chain: m.Chain, Seq: b.lastSeq}})
	}
	return res, nil
}

// handleReplBatchAck relays a cumulative acknowledgement up the chain
// (middle members) or releases every withheld effect up to Seq (the
// primary). Acks must be strictly monotonic and can never exceed what
// was flushed — a forged ack cannot release effects of updates the
// chain has not applied.
func (e *Enclave) handleReplBatchAck(from cryptoutil.PublicKey, m *wire.ReplBatchAck) (*Result, error) {
	if b, ok := e.backups[m.Chain]; ok {
		if next, hasNext := b.next(); !hasNext || next != from {
			return nil, fmt.Errorf("core: replication ack from non-successor %s", from)
		}
		return &Result{Out: oneOut(b.prev(), &wire.ReplBatchAck{Chain: m.Chain, Seq: m.Seq})}, nil
	}
	if e.repl == nil || e.repl.chainID != m.Chain {
		return nil, fmt.Errorf("core: ack for unknown chain %s", m.Chain)
	}
	backup, ok := e.repl.backup()
	if !ok || from != backup {
		return nil, fmt.Errorf("core: replication ack from non-backup %s", from)
	}
	l := e.repl.log
	l.mu.Lock()
	if m.Seq <= l.ackSeq {
		ackSeq := l.ackSeq
		l.mu.Unlock()
		return nil, fmt.Errorf("core: stale cumulative ack %d (acked %d)", m.Seq, ackSeq)
	}
	if m.Seq > l.flushSeq {
		flushSeq := l.flushSeq
		l.mu.Unlock()
		return nil, fmt.Errorf("core: cumulative ack %d beyond flushed %d", m.Seq, flushSeq)
	}
	if m.Seq > l.batchAckHigh {
		l.batchAckHigh = m.Seq
	}
	l.advanceAckLocked()
	target := l.releaseTargetLocked(true)
	l.mu.Unlock()
	res := e.pools.getResult()
	e.releaseTo(l, target, res)
	return res, nil
}

// handleReplNack processes a mirror's gap report: middle members relay
// it toward the primary; the primary schedules a retransmission of the
// missing range from its retained log entries. NACK-suppression lives
// here too — a retransmission already in flight that covers the wanted
// range is not restarted, so a slow mirror cannot amplify one loss into
// a retransmit storm.
func (e *Enclave) handleReplNack(from cryptoutil.PublicKey, m *wire.ReplNack) (*Result, error) {
	if b, ok := e.backups[m.Chain]; ok {
		if next, hasNext := b.next(); !hasNext || next != from {
			return nil, fmt.Errorf("core: replication nack from non-successor %s", from)
		}
		// Relay a copy: byte transports reuse the decode target.
		return &Result{Out: oneOut(b.prev(), &wire.ReplNack{
			Chain: m.Chain, WantSeq: m.WantSeq, HaveThrough: m.HaveThrough,
		})}, nil
	}
	if e.repl == nil || e.repl.chainID != m.Chain {
		return nil, fmt.Errorf("core: nack for unknown chain %s", m.Chain)
	}
	backup, ok := e.repl.backup()
	if !ok || from != backup {
		return nil, fmt.Errorf("core: replication nack from non-backup %s", from)
	}
	l := e.repl.log
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nacksIn++
	if m.WantSeq == 0 || m.WantSeq > l.flushSeq+1 {
		return nil, fmt.Errorf("core: nack wants %d outside flushed window (flushed %d)", m.WantSeq, l.flushSeq)
	}
	start := m.WantSeq - 1
	if start < l.ackSeq {
		start = l.ackSeq
	}
	if l.retxSeq < l.retxEnd && start >= l.retxSeq {
		// A retransmission already covering the wanted range is in
		// flight; let it run instead of rewinding (suppression).
		return &Result{}, nil
	}
	l.retxSeq = start
	l.retxEnd = l.flushSeq
	return &Result{}, nil
}
