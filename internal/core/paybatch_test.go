package core

import (
	"math"
	"strings"
	"testing"

	"teechain/internal/chain"
	"teechain/internal/wire"
)

// TestPayBatchHostileInputsRejected pins the wire-facing validation of
// the batch payment path: overflowing batch totals and forged
// acks/nacks with non-positive counts or amounts must be rejected
// before they reach State.Apply (whose `bal < amount` guards are
// vacuously true for negative amounts) or the hosts' uint64 counters.
func TestPayBatchHostileInputsRejected(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	w.connect(a, b)
	id := w.openChannel(a, b)
	w.fundAndAssociate(a, b, id, 1000)

	ea, eb := a.Enclave(), b.Enclave()
	aliceID := ea.Identity()
	bobID := eb.Identity()

	// Sender-side: overflow, empty, and negative-amount batches.
	if _, err := ea.PayBatch(id, []chain.Amount{math.MaxInt64, math.MaxInt64}); err == nil ||
		!strings.Contains(err.Error(), "overflow") {
		t.Fatalf("overflowing PayBatch accepted (err=%v)", err)
	}
	if _, err := ea.PayBatch(id, nil); err == nil {
		t.Fatal("empty PayBatch accepted")
	}
	if _, err := ea.PayBatch(id, []chain.Amount{5, -3}); err == nil {
		t.Fatal("negative amount in PayBatch accepted")
	}

	// Receiver-side: hostile frames straight into the handlers (the
	// session already exists, so only payload validation stands between
	// the wire and the state).
	hostile := []struct {
		name string
		call func() (*Result, error)
	}{
		{"overflowing batch", func() (*Result, error) {
			return eb.handlePayBatch(aliceID, &wire.PayBatch{Channel: id, Amounts: []chain.Amount{math.MaxInt64, math.MaxInt64}})
		}},
		{"zero-amount batch", func() (*Result, error) {
			return eb.handlePayBatch(aliceID, &wire.PayBatch{Channel: id, Amounts: []chain.Amount{0}})
		}},
		{"negative batch ack", func() (*Result, error) {
			return ea.handlePayBatchAck(bobID, &wire.PayBatchAck{Channel: id, Total: -5, Count: 1})
		}},
		{"negative-count batch ack", func() (*Result, error) {
			return ea.handlePayBatchAck(bobID, &wire.PayBatchAck{Channel: id, Total: 5, Count: -1})
		}},
		{"negative ack", func() (*Result, error) {
			return ea.handlePayAck(bobID, &wire.PayAck{Channel: id, Amount: -5, Count: 1})
		}},
		{"negative nack", func() (*Result, error) {
			return ea.handlePayNack(bobID, &wire.PayNack{Channel: id, Amount: -5, Count: 1})
		}},
		{"negative-count nack", func() (*Result, error) {
			return ea.handlePayNack(bobID, &wire.PayNack{Channel: id, Amount: 5, Count: -1})
		}},
	}
	balA := ea.State().PerceivedBalance()
	balB := eb.State().PerceivedBalance()
	for _, h := range hostile {
		if _, err := h.call(); err == nil {
			t.Fatalf("%s accepted", h.name)
		}
	}
	if got := ea.State().PerceivedBalance(); got != balA {
		t.Fatalf("hostile input moved alice balance: %d -> %d", balA, got)
	}
	if got := eb.State().PerceivedBalance(); got != balB {
		t.Fatalf("hostile input moved bob balance: %d -> %d", balB, got)
	}

	// A legitimate batch still flows end to end afterwards.
	res, err := ea.PayBatch(id, []chain.Amount{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	a.Dispatch(res)
	w.until(func() bool {
		c, ok := eb.State().Channels[id]
		return ok && c.MyBal == 60
	})
	c := ea.State().Channels[id]
	if c.MyBal != 1000-60 || c.RemoteBal != 60 {
		t.Fatalf("post-batch balances: %d/%d, want 940/60", c.MyBal, c.RemoteBal)
	}
}
