package core

import (
	"fmt"

	"teechain/internal/chain"
	"teechain/internal/cryptoutil"
	"teechain/internal/wire"
)

// Temporary channels (§5.2): locking a channel during a multi-hop
// payment blocks concurrent payments along the same edge. Because
// Teechain creates channels instantly and assigns deposits dynamically,
// a host can open G additional ("temporary") channels to the same peer
// out of unassociated deposits; the enclave's channel selection then
// spreads concurrent payments across them.

// CreateTempChannels opens g temporary channels to peer, each funded
// with a fresh deposit of the given value (setup-shortcut funding). It
// returns the channel IDs once all are open and funded.
func (n *Node) CreateTempChannels(peer *Node, g int, value chain.Amount) ([]wire.ChannelID, error) {
	if g < 1 {
		return nil, fmt.Errorf("core: temp channel count %d must be positive", g)
	}
	ids := make([]wire.ChannelID, 0, g)
	for i := 0; i < g; i++ {
		id := n.newChannelID(peer)
		res, err := n.enclave.OpenChannel(id, peer.Identity(), n.wallet.Address(), true)
		if err != nil {
			return nil, err
		}
		n.dispatch(res)
		point, err := n.CreateDepositInstant(value)
		if err != nil {
			return nil, err
		}
		n.tempSetup = append(n.tempSetup, tempSetup{channel: id, point: point, peer: peer.Identity()})
		ids = append(ids, id)
	}
	return ids, nil
}

type tempSetup struct {
	channel wire.ChannelID
	point   chain.OutPoint
	peer    cryptoutil.PublicKey
}

// FinishTempChannels completes deposit approval and association for
// channels created by CreateTempChannels; call after the simulator has
// delivered the channel-open handshakes.
func (n *Node) FinishTempChannels() error {
	pending := n.tempSetup
	n.tempSetup = nil
	for _, ts := range pending {
		res, err := n.enclave.RequestDepositApproval(ts.peer, ts.point)
		if err != nil {
			return err
		}
		n.dispatch(res)
		n.tempAssoc = append(n.tempAssoc, ts)
	}
	return nil
}

// AssociateTempDeposits is the final setup step: associate each
// approved deposit with its temporary channel.
func (n *Node) AssociateTempDeposits() error {
	pending := n.tempAssoc
	n.tempAssoc = nil
	for _, ts := range pending {
		res, err := n.enclave.AssociateDeposit(ts.channel, ts.point)
		if err != nil {
			return err
		}
		n.dispatch(res)
	}
	return nil
}

// MergeTempChannel folds a temporary channel back into the primary
// relationship (§5.2): the imbalance is moved to the primary channel by
// a payment pair between the same two hosts (the cycle payment of the
// paper, specialised to its two-party form), after which the neutral
// temporary channel terminates off-chain by deposit dissociation.
//
// Both hosts cooperate, mirroring the out-of-band coordination the
// paper assumes for channel management.
func (n *Node) MergeTempChannel(peer *Node, temp, primary wire.ChannelID) error {
	c, ok := n.enclave.State().Channels[temp]
	if !ok {
		return fmt.Errorf("core: unknown temp channel %s", temp)
	}
	if !c.Temp {
		return fmt.Errorf("core: channel %s is not temporary", temp)
	}
	var myDeps chain.Amount
	for _, d := range c.MyDeps {
		myDeps += d.Value
	}
	switch delta := c.MyBal - myDeps; {
	case delta > 0:
		// Our surplus on the temp channel moves back over temp and
		// returns on the primary.
		if err := n.Pay(temp, delta, nil); err != nil {
			return err
		}
		if err := peer.Pay(primary, delta, nil); err != nil {
			return err
		}
	case delta < 0:
		if err := peer.Pay(temp, -delta, nil); err != nil {
			return err
		}
		if err := n.Pay(primary, -delta, nil); err != nil {
			return err
		}
	}
	n.pendingMerges = append(n.pendingMerges, temp)
	return nil
}

// CompleteMerges settles all now-neutral temporary channels off-chain.
// Call after the rebalancing payments have been acknowledged.
func (n *Node) CompleteMerges() error {
	pending := n.pendingMerges
	n.pendingMerges = nil
	for _, id := range pending {
		sr, err := n.Settle(id)
		if err != nil {
			return err
		}
		if !sr.OffChain {
			return fmt.Errorf("core: temp channel %s did not settle off-chain", id)
		}
	}
	return nil
}
