package core

import (
	"fmt"
	"testing"
	"time"

	"teechain/internal/chain"
	"teechain/internal/cryptoutil"
	"teechain/internal/netsim"
	"teechain/internal/sim"
	"teechain/internal/tee"
	"teechain/internal/wire"
)

// world wires a simulator, network, blockchain, directory, and nodes
// into a ready test deployment.
type world struct {
	t     *testing.T
	sim   *sim.Simulator
	net   *netsim.Network
	chain *chain.Chain
	dir   *Directory
	auth  *tee.Authority
}

func newWorld(t *testing.T) *world {
	t.Helper()
	s := sim.New()
	n := netsim.New(s)
	n.SetDefaultLink(netsim.RTT(10*time.Millisecond, 0))
	auth, err := tee.NewAuthority("test")
	if err != nil {
		t.Fatal(err)
	}
	return &world{
		t:     t,
		sim:   s,
		net:   n,
		chain: chain.New(),
		dir:   NewDirectory(),
		auth:  auth,
	}
}

func (w *world) node(name string, cfg NodeConfig) *Node {
	w.t.Helper()
	cfg.Seed = uint64(len(name))*7919 + uint64(name[0])
	if cfg.Enclave.MinConfirmations == 0 {
		cfg.Enclave.MinConfirmations = 1
	}
	n, err := NewNode(netsim.NodeID(name), w.net, w.chain, w.dir, w.auth, cfg)
	if err != nil {
		w.t.Fatalf("NewNode(%s): %v", name, err)
	}
	return n
}

// connect runs mutual attestation between two nodes to completion.
func (w *world) connect(a, b *Node) {
	w.t.Helper()
	if err := a.Connect(b); err != nil {
		w.t.Fatalf("connect %s->%s: %v", a.ID, b.ID, err)
	}
	w.until(func() bool { return a.Connected(b) && b.Connected(a) })
}

// until runs the simulator until cond holds, failing after a step
// budget.
func (w *world) until(cond func() bool) {
	w.t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if cond() {
			return
		}
		if !w.sim.Step() {
			break
		}
	}
	if !cond() {
		w.t.Fatalf("condition never satisfied (sim drained at %v after %d steps)", w.sim.Now(), w.sim.Steps())
	}
}

// run drains the simulator.
func (w *world) run() { w.sim.Run() }

// openChannel opens a channel and waits until both sides see it open.
func (w *world) openChannel(a, b *Node) wire.ChannelID {
	w.t.Helper()
	id, err := a.OpenChannel(b)
	if err != nil {
		w.t.Fatalf("OpenChannel: %v", err)
	}
	w.until(func() bool {
		ca, okA := a.Enclave().State().Channels[id]
		cb, okB := b.Enclave().State().Channels[id]
		return okA && okB && ca.Open && cb.Open
	})
	return id
}

// fundAndAssociate creates a deposit at node a, gets it approved by b,
// and associates it with the channel.
func (w *world) fundAndAssociate(a, b *Node, id wire.ChannelID, value chain.Amount) chain.OutPoint {
	w.t.Helper()
	point, err := a.CreateDepositInstant(value)
	if err != nil {
		w.t.Fatalf("CreateDepositInstant: %v", err)
	}
	w.until(func() bool {
		rec, ok := a.Enclave().State().Deposits[point]
		return ok && rec.Free
	})
	if err := a.ApproveDeposit(b, point); err != nil {
		w.t.Fatalf("ApproveDeposit: %v", err)
	}
	w.until(func() bool { return a.Enclave().State().ApprovedMine[b.Identity()][point] })
	if err := a.AssociateDeposit(id, point); err != nil {
		w.t.Fatalf("AssociateDeposit: %v", err)
	}
	w.until(func() bool {
		cb, ok := b.Enclave().State().Channels[id]
		return ok && cb.findDep(cb.RemoteDeps, point) >= 0
	})
	return point
}

// pipeline builds a line topology a0 - a1 - ... with one channel per
// adjacent pair, funded by the upstream party with the given value.
func (w *world) pipeline(value chain.Amount, nodes ...*Node) []wire.ChannelID {
	w.t.Helper()
	var ids []wire.ChannelID
	for i := 0; i+1 < len(nodes); i++ {
		w.connect(nodes[i], nodes[i+1])
		id := w.openChannel(nodes[i], nodes[i+1])
		w.fundAndAssociate(nodes[i], nodes[i+1], id, value)
		ids = append(ids, id)
	}
	return ids
}

func channelBal(t *testing.T, n *Node, id wire.ChannelID) (chain.Amount, chain.Amount) {
	t.Helper()
	c, ok := n.Enclave().State().Channels[id]
	if !ok {
		t.Fatalf("node %s has no channel %s", n.ID, id)
	}
	return c.MyBal, c.RemoteBal
}

func TestAttestationEstablishesSessions(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	w.connect(a, b)
	if !a.Enclave().SessionEstablished(b.Identity()) {
		t.Fatal("alice has no session")
	}
	if !b.Enclave().SessionEstablished(a.Identity()) {
		t.Fatal("bob has no session")
	}
}

func TestChannelLifecycleAndPayments(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	w.connect(a, b)
	id := w.openChannel(a, b)
	w.fundAndAssociate(a, b, id, 1000)
	w.fundAndAssociate(b, a, id, 500)

	myA, remA := channelBal(t, a, id)
	if myA != 1000 || remA != 500 {
		t.Fatalf("alice sees %d/%d, want 1000/500", myA, remA)
	}

	var ackLatency time.Duration
	if err := a.Pay(id, 250, func(ok bool, lat time.Duration, reason string) {
		if !ok {
			t.Fatalf("payment failed: %s", reason)
		}
		ackLatency = lat
	}); err != nil {
		t.Fatalf("Pay: %v", err)
	}
	w.until(func() bool { return a.PaymentsAcked == 1 })

	myA, remA = channelBal(t, a, id)
	if myA != 750 || remA != 750 {
		t.Fatalf("after payment alice sees %d/%d, want 750/750", myA, remA)
	}
	myB, remB := channelBal(t, b, id)
	if myB != 750 || remB != 750 {
		t.Fatalf("after payment bob sees %d/%d, want 750/750", myB, remB)
	}
	// One round trip on a 10ms RTT link.
	if ackLatency < 10*time.Millisecond || ackLatency > 15*time.Millisecond {
		t.Fatalf("ack latency %v, want ~10ms", ackLatency)
	}
	if b.PaymentsReceived != 1 {
		t.Fatalf("bob received %d payments, want 1", b.PaymentsReceived)
	}

	// Pay back.
	if err := b.Pay(id, 100, nil); err != nil {
		t.Fatalf("Pay back: %v", err)
	}
	w.until(func() bool { return b.PaymentsAcked == 1 })
	myA, _ = channelBal(t, a, id)
	if myA != 850 {
		t.Fatalf("alice balance %d, want 850", myA)
	}
}

func TestPaymentInsufficientBalanceRejected(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	w.connect(a, b)
	id := w.openChannel(a, b)
	w.fundAndAssociate(a, b, id, 100)
	if err := a.Pay(id, 200, nil); err == nil {
		t.Fatal("overdraft accepted")
	}
}

func TestOnChainSettlement(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	w.connect(a, b)
	id := w.openChannel(a, b)
	w.fundAndAssociate(a, b, id, 1000)
	if err := a.Pay(id, 400, nil); err != nil {
		t.Fatal(err)
	}
	w.until(func() bool { return a.PaymentsAcked == 1 })

	sr, err := a.Settle(id)
	if err != nil {
		t.Fatalf("Settle: %v", err)
	}
	if sr.OffChain {
		t.Fatal("non-neutral channel settled off-chain")
	}
	w.run()
	w.chain.MineBlock()
	if got := w.chain.BalanceByAddress(a.wallet.Address()); got != 600 {
		t.Fatalf("alice on-chain balance %d, want 600", got)
	}
	if got := w.chain.BalanceByAddress(b.wallet.Address()); got != 400 {
		t.Fatalf("bob on-chain balance %d, want 400", got)
	}
	if w.chain.TotalUnspent() != w.chain.Minted() {
		t.Fatal("value not conserved")
	}
}

func TestOffChainSettlementWhenNeutral(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	w.connect(a, b)
	id := w.openChannel(a, b)
	point := w.fundAndAssociate(a, b, id, 1000)

	sr, err := a.Settle(id)
	if err != nil {
		t.Fatalf("Settle: %v", err)
	}
	if !sr.OffChain {
		t.Fatal("neutral channel did not settle off-chain")
	}
	w.run()
	ca := a.Enclave().State().Channels[id]
	cb := b.Enclave().State().Channels[id]
	if !ca.Closed || !cb.Closed {
		t.Fatalf("channel not closed on both sides: %v/%v", ca.Closed, cb.Closed)
	}
	rec := a.Enclave().State().Deposits[point]
	if !rec.Free {
		t.Fatal("deposit not free after off-chain termination")
	}
	// No settlement transaction hit the chain.
	w.chain.MineBlock()
	if got := w.chain.BalanceByAddress(a.wallet.Address()); got != 0 {
		t.Fatal("off-chain settlement placed funds on chain")
	}
	// The deposit can now be released on chain.
	if err := a.ReleaseDeposit(point); err != nil {
		t.Fatalf("ReleaseDeposit: %v", err)
	}
	w.run()
	w.chain.MineBlock()
	if got := w.chain.BalanceByAddress(a.wallet.Address()); got != 1000 {
		t.Fatalf("released deposit balance %d, want 1000", got)
	}
}

func TestDissociateRebalancing(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	w.connect(a, b)
	id := w.openChannel(a, b)
	d1 := w.fundAndAssociate(a, b, id, 1000)
	w.fundAndAssociate(a, b, id, 300)

	// Pay 200: alice's balance is 1100, both deposits locked in.
	if err := a.Pay(id, 200, nil); err != nil {
		t.Fatal(err)
	}
	w.until(func() bool { return a.PaymentsAcked == 1 })

	// Dissociate the big deposit to reduce collateral lock-in (§4.1).
	if err := a.DissociateDeposit(id, d1); err != nil {
		t.Fatalf("DissociateDeposit: %v", err)
	}
	w.until(func() bool {
		rec := a.Enclave().State().Deposits[d1]
		return rec != nil && rec.Free
	})
	my, _ := channelBal(t, a, id)
	if my != 100 {
		t.Fatalf("alice channel balance %d after dissociation, want 100", my)
	}
	// Bob no longer holds the key: his enclave must refuse to settle
	// with the dissociated deposit... and his view agrees.
	cb := b.Enclave().State().Channels[id]
	if cb.findDep(cb.RemoteDeps, d1) >= 0 {
		t.Fatal("bob still lists the dissociated deposit")
	}
	// Dissociating below balance fails: alice's remaining deposit is
	// 300 with balance 100.
	if err := a.Pay(id, 50, nil); err != nil {
		t.Fatal(err)
	}
	w.until(func() bool { return a.PaymentsAcked == 2 })
	// balance 50 now; dissociating the 300 deposit requires balance >= 300.
	point2 := a.Enclave().State().Channels[id].MyDeps[0].Point
	if err := a.DissociateDeposit(id, point2); err == nil {
		w.run()
		rec := a.Enclave().State().Deposits[point2]
		if rec.Free {
			t.Fatal("dissociation below balance succeeded")
		}
	}
}

func TestPerceivedBalanceConservation(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	w.connect(a, b)
	id := w.openChannel(a, b)
	w.fundAndAssociate(a, b, id, 1000)
	w.fundAndAssociate(b, a, id, 500)

	before := a.Enclave().State().PerceivedBalance() + b.Enclave().State().PerceivedBalance()
	for i := 0; i < 10; i++ {
		var err error
		if i%2 == 0 {
			err = a.Pay(id, 37, nil)
		} else {
			err = b.Pay(id, 11, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
		w.run()
	}
	after := a.Enclave().State().PerceivedBalance() + b.Enclave().State().PerceivedBalance()
	if before != after {
		t.Fatalf("perceived balance not conserved: %d -> %d", before, after)
	}
}

func identityPath(nodes ...*Node) []cryptoutil.PublicKey {
	path := make([]cryptoutil.PublicKey, len(nodes))
	for i, n := range nodes {
		path[i] = n.Identity()
	}
	return path
}

func TestMultihopPayment(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	c := w.node("carol", NodeConfig{})
	ids := w.pipeline(1000, a, b, c)

	var completed bool
	err := a.PayMultihop([][]cryptoutil.PublicKey{identityPath(a, b, c)}, 200, 1,
		func(ok bool, lat time.Duration, reason string) {
			if !ok {
				t.Fatalf("multihop failed: %s", reason)
			}
			completed = true
		})
	if err != nil {
		t.Fatalf("PayMultihop: %v", err)
	}
	w.run()
	if !completed {
		t.Fatal("multihop never completed")
	}

	myA, _ := channelBal(t, a, ids[0])
	if myA != 800 {
		t.Fatalf("alice balance %d, want 800", myA)
	}
	myB0, _ := channelBal(t, b, ids[0])
	if myB0 != 200 {
		t.Fatalf("bob upstream balance %d, want 200", myB0)
	}
	myB1, _ := channelBal(t, b, ids[1])
	if myB1 != 800 {
		t.Fatalf("bob downstream balance %d, want 800", myB1)
	}
	myC, _ := channelBal(t, c, ids[1])
	if myC != 200 {
		t.Fatalf("carol balance %d, want 200", myC)
	}

	// Channels unlock and remain usable.
	for _, n := range []*Node{a, b, c} {
		for _, ch := range n.Enclave().State().Channels {
			if ch.Stage != MhIdle {
				t.Fatalf("node %s channel %s stuck in stage %v", n.ID, ch.ID, ch.Stage)
			}
		}
	}
	if err := a.Pay(ids[0], 100, nil); err != nil {
		t.Fatalf("channel unusable after multihop: %v", err)
	}
	w.run()
}

func TestMultihopLongPath(t *testing.T) {
	w := newWorld(t)
	nodes := make([]*Node, 6)
	for i := range nodes {
		nodes[i] = w.node(fmt.Sprintf("n%d", i), NodeConfig{})
	}
	ids := w.pipeline(1000, nodes...)

	var completed bool
	err := nodes[0].PayMultihop([][]cryptoutil.PublicKey{identityPath(nodes...)}, 50, 1,
		func(ok bool, _ time.Duration, reason string) {
			if !ok {
				t.Fatalf("multihop failed: %s", reason)
			}
			completed = true
		})
	if err != nil {
		t.Fatal(err)
	}
	w.run()
	if !completed {
		t.Fatal("long multihop never completed")
	}
	// Every interior node forwarded exactly 50.
	for i, n := range nodes[:len(nodes)-1] {
		my, _ := channelBal(t, n, ids[i])
		if my != 950 {
			t.Fatalf("node %d downstream balance %d, want 950", i, my)
		}
	}
	last, _ := channelBal(t, nodes[len(nodes)-1], ids[len(ids)-1])
	if last != 50 {
		t.Fatalf("recipient balance %d, want 50", last)
	}
}

func TestMultihopContentionAbortsAndRetries(t *testing.T) {
	w := newWorld(t)
	// Stage pipeline delays make a contended payment take ~1s; give
	// retries enough runway.
	a := w.node("alice", NodeConfig{MaxRetries: 30})
	b := w.node("bob", NodeConfig{MaxRetries: 30})
	c := w.node("carol", NodeConfig{MaxRetries: 30})
	d := w.node("dave", NodeConfig{MaxRetries: 30})
	// a-b-c path and d-b: d locks b's channel to c first.
	ids := w.pipeline(1000, a, b, c)
	_ = ids
	w.connect(d, b)
	idDB := w.openChannel(d, b)
	w.fundAndAssociate(d, b, idDB, 1000)

	// Lock b-c by starting a payment from d and pausing the simulator
	// mid-flight: issue both payments back to back; one will hit the
	// locked channel and retry.
	okCount := 0
	check := func(ok bool, _ time.Duration, reason string) {
		if !ok {
			t.Fatalf("payment failed permanently: %s", reason)
		}
		okCount++
	}
	if err := d.PayMultihop([][]cryptoutil.PublicKey{identityPath(d, b, c)}, 10, 1, check); err != nil {
		t.Fatal(err)
	}
	if err := a.PayMultihop([][]cryptoutil.PublicKey{identityPath(a, b, c)}, 10, 1, check); err != nil {
		t.Fatal(err)
	}
	w.run()
	if okCount != 2 {
		t.Fatalf("completed %d payments, want 2", okCount)
	}
}

// TestMultihopContentionAbortIsTransient re-runs the contention
// scenario and inspects the failure events themselves: every abort a
// busy hop sends back (locked channel, stale τ) must arrive at the
// initiator marked Transient, the signal hosts and the client SDK use
// to distinguish retry-worthy rejections from permanent ones.
func TestMultihopContentionAbortIsTransient(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{MaxRetries: 30})
	b := w.node("bob", NodeConfig{MaxRetries: 30})
	c := w.node("carol", NodeConfig{MaxRetries: 30})
	d := w.node("dave", NodeConfig{MaxRetries: 30})
	w.pipeline(1000, a, b, c)
	w.connect(d, b)
	idDB := w.openChannel(d, b)
	w.fundAndAssociate(d, b, idDB, 1000)

	var aborts, transient int
	rec := func(ev Event) {
		if e, ok := ev.(EvMultihopComplete); ok && !e.OK {
			aborts++
			if e.Transient {
				transient++
			}
		}
	}
	a.OnEvent(rec)
	d.OnEvent(rec)

	okCount := 0
	check := func(ok bool, _ time.Duration, reason string) {
		if !ok {
			t.Fatalf("payment failed permanently: %s", reason)
		}
		okCount++
	}
	if err := d.PayMultihop([][]cryptoutil.PublicKey{identityPath(d, b, c)}, 10, 1, check); err != nil {
		t.Fatal(err)
	}
	if err := a.PayMultihop([][]cryptoutil.PublicKey{identityPath(a, b, c)}, 10, 1, check); err != nil {
		t.Fatal(err)
	}
	w.run()
	if okCount != 2 {
		t.Fatalf("completed %d payments, want 2", okCount)
	}
	if aborts == 0 {
		t.Fatal("no contention abort observed — scenario lost its race")
	}
	if transient != aborts {
		t.Fatalf("%d of %d contention aborts marked transient, want all", transient, aborts)
	}
}
