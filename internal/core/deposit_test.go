package core

import (
	"testing"
	"time"

	"teechain/internal/chain"
	"teechain/internal/wire"
)

// TestWalletFundedDepositMatures exercises the full asynchronous
// deposit path (§4): the host funds the deposit from its wallet with a
// real blockchain transaction, waits for the configured confirmation
// depth, and only then registers it with the enclave.
func TestWalletFundedDepositMatures(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	w.connect(a, b)

	// Give alice's wallet on-chain funds.
	utxo, err := w.chain.FundKey(a.WalletKey(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	point, err := a.CreateDeposit(utxo, 3000, 3)
	if err != nil {
		t.Fatalf("CreateDeposit: %v", err)
	}
	// Not yet registered: the funding transaction is unconfirmed.
	if _, ok := a.Enclave().State().Deposits[point]; ok {
		t.Fatal("deposit registered before confirmation")
	}
	w.chain.MineBlock()
	w.run()
	if _, ok := a.Enclave().State().Deposits[point]; ok {
		t.Fatal("deposit registered below the confirmation policy")
	}
	w.chain.MineBlocks(2)
	w.run()
	rec, ok := a.Enclave().State().Deposits[point]
	if !ok || !rec.Free {
		t.Fatal("deposit not registered after maturing")
	}
	// Change returned to the wallet.
	if got := w.chain.BalanceByAddress(a.WalletKey().Address()); got != 2000 {
		t.Fatalf("wallet change %d, want 2000", got)
	}

	// The matured deposit is fully usable.
	id := w.openChannel(a, b)
	if err := a.ApproveDeposit(b, point); err != nil {
		t.Fatal(err)
	}
	w.until(func() bool { return a.Enclave().State().ApprovedMine[b.Identity()][point] })
	if err := a.AssociateDeposit(id, point); err != nil {
		t.Fatal(err)
	}
	w.run()
	if err := a.Pay(id, 1234, nil); err != nil {
		t.Fatal(err)
	}
	w.run()
	my, _ := channelBal(t, a, id)
	if my != 3000-1234 {
		t.Fatalf("balance %d after paying from wallet-funded deposit", my)
	}
}

// TestDepositApprovalPolicyRejectsShallow verifies the §4.1 security
// parameter: an enclave configured to require deep confirmations
// refuses shallow deposits.
func TestDepositApprovalPolicyRejectsShallow(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	strict := w.node("strict", NodeConfig{Enclave: Config{MinConfirmations: 6}})
	w.connect(a, strict)
	id := w.openChannel(a, strict)
	_ = id

	point, err := a.CreateDepositInstant(100)
	if err != nil {
		t.Fatal(err)
	}
	w.run()
	if err := a.ApproveDeposit(strict, point); err != nil {
		t.Fatal(err)
	}
	w.run()
	if a.Enclave().State().ApprovedMine[strict.Identity()][point] {
		t.Fatal("strict peer approved a shallow deposit")
	}
	// After six blocks the host retries approval and it passes.
	w.chain.MineBlocks(6)
	if err := a.ApproveDeposit(strict, point); err != nil {
		t.Fatal(err)
	}
	w.run()
	if !a.Enclave().State().ApprovedMine[strict.Identity()][point] {
		t.Fatal("deep deposit still not approved")
	}
}

func TestCostModelKnees(t *testing.T) {
	cm := CostModel(false)
	payCPU, payDelay := cm(&wire.Pay{Count: 1})
	if payDelay != 0 {
		t.Fatal("payments must not carry pipeline delay")
	}
	// 1/(payCPU) is the single-channel ceiling: ~130k tx/s (Table 1).
	tput := 1.0 / payCPU.Seconds()
	if tput < 120_000 || tput > 140_000 {
		t.Fatalf("payment knee %.0f tx/s, want ~130k", tput)
	}
	replCPU, _ := cm(&wire.ReplUpdate{Op: &Op{Kind: OpPaySend, Count: 1}})
	tput = 1.0 / replCPU.Seconds()
	if tput < 30_000 || tput > 38_000 {
		t.Fatalf("replication knee %.0f tx/s, want ~34k", tput)
	}
	// Batched: per-payment amortised cost approaches CostPayPerPayment.
	batchCPU, _ := cm(&wire.Pay{Count: 10_000})
	per := batchCPU.Seconds() / 10_000
	if 1/per < 145_000 || 1/per > 160_000 {
		t.Fatalf("batched knee %.0f tx/s, want ~150k", 1/per)
	}
	// Stage messages are delay-dominated, not CPU-dominated.
	mhCPU, mhDelay := cm(&wire.MhLock{})
	if mhDelay < 50*time.Millisecond || mhCPU > 10*time.Millisecond {
		t.Fatalf("stage cost cpu=%v delay=%v; want delay-dominated", mhCPU, mhDelay)
	}
}

func TestCostModelStableStorage(t *testing.T) {
	cm := CostModel(true)
	// Unbatched payment: bound by the counter (10 tx/s).
	payCPU, _ := cm(&wire.Pay{Count: 1})
	if payCPU != 100*time.Millisecond {
		t.Fatalf("stable unbatched pay cpu %v, want 100ms", payCPU)
	}
	// Large batch: processing exceeds and thus hides the counter.
	batchCPU, _ := cm(&wire.Pay{Count: 100_000})
	if batchCPU <= 100*time.Millisecond {
		t.Fatalf("stable batched pay cpu %v should exceed the counter", batchCPU)
	}
	// Non-payment state changes pay the counter additively.
	assocCPU, _ := cm(&wire.AssociateDeposit{})
	if assocCPU <= 100*time.Millisecond {
		t.Fatalf("stable associate cpu %v, want counter + processing", assocCPU)
	}
	// Reads do not touch the counter.
	ackCPU, _ := cm(&wire.PayAck{})
	if ackCPU >= 100*time.Millisecond {
		t.Fatalf("stable ack cpu %v should not pay the counter", ackCPU)
	}
}

func TestReleaseRequiresFreeDeposit(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	w.connect(a, b)
	id := w.openChannel(a, b)
	point := w.fundAndAssociate(a, b, id, 100)
	// Associated deposits cannot be released out from under the channel.
	if _, _, _, err := a.Enclave().ReleaseDeposit(point); err == nil {
		t.Fatal("released an associated deposit")
	}
	_ = chain.Amount(0)
}
