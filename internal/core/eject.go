package core

import (
	"errors"
	"fmt"

	"teechain/internal/chain"
	"teechain/internal/wire"
)

// This file implements premature termination of multi-hop payments
// (Alg. 2 eject, §5.1): voluntary ejection returns stage-appropriate
// settlement transactions, and proofs of premature termination (PoPTs)
// let the remaining participants settle consistently with whichever
// state the ejector committed to the blockchain.

// mhDelta returns the payment's balance delta for a channel from this
// node's perspective: +amount on the upstream channel (we receive),
// -amount on the downstream channel (we pay).
func mhDelta(mh *MultihopState, upstream bool) chain.Amount {
	if upstream {
		return mh.Amount
	}
	return -mh.Amount
}

// balanceApplied reports whether the update-stage balance transfer has
// already been applied to this channel's view.
func balanceApplied(c *ChannelState) bool {
	return c.Stage == MhUpdate || c.Stage == MhPostUpdate
}

// settleChannelAt builds a settlement for channel c at pre- or
// post-payment balances relative to the in-flight payment.
func (e *Enclave) settleChannelAt(c *ChannelState, mh *MultihopState, upstream, post bool) (*chain.Transaction, []wire.DepositInfo, error) {
	myBal, remoteBal := c.MyBal, c.RemoteBal
	delta := mhDelta(mh, upstream)
	applied := balanceApplied(c)
	switch {
	case post && !applied:
		myBal += delta
		remoteBal -= delta
	case !post && applied:
		myBal -= delta
		remoteBal += delta
	}
	if myBal < 0 || remoteBal < 0 {
		return nil, nil, ErrInsufficient
	}
	myKey, remoteKey, err := e.settlementKeys(c)
	if err != nil {
		return nil, nil, err
	}
	return buildChannelSettlement(c, myBal, remoteBal, myKey, remoteKey)
}

// ejectLocalChannels closes and settles this node's payment channels at
// pre- or post-payment state, signing what it can and reporting
// outstanding committee needs.
func (e *Enclave) ejectLocalChannels(mh *MultihopState, post bool) (*SettleResult, error) {
	up, down := e.mhChannels(mh)
	if up == nil && down == nil {
		return nil, errors.New("core: no channels participate in this payment")
	}
	out := &SettleResult{Result: &Result{}}
	type job struct {
		c        *ChannelState
		upstream bool
	}
	var jobs []job
	if up != nil && !up.Closed {
		jobs = append(jobs, job{up, true})
	}
	if down != nil && !down.Closed {
		jobs = append(jobs, job{down, false})
	}
	if len(jobs) == 0 {
		// Both channels already settled (e.g. observed on chain); just
		// finish the payment record.
		res, err := e.commit(&Op{Kind: OpMhFinish, Payment: mh.Payment}, nil, nil)
		if err != nil {
			return nil, err
		}
		return &SettleResult{Result: res}, nil
	}
	for _, j := range jobs {
		tx, deps, err := e.settleChannelAt(j.c, mh, j.upstream, post)
		if err != nil {
			return nil, err
		}
		needs := e.signSettlementInputs(tx, deps)
		out.Txs = append(out.Txs, tx)
		out.Needs = append(out.Needs, needs)
		res, err := e.commit(&Op{Kind: OpCloseChannel, Channel: j.c.ID}, nil, []Event{
			EvChannelClosed{Channel: j.c.ID, OffChain: false},
			EvSettlementReady{Channel: j.c.ID, Tx: tx, Needs: needs},
		})
		if err != nil {
			return nil, err
		}
		out.Result.merge(res)
	}
	res, err := e.commit(&Op{Kind: OpMhFinish, Payment: mh.Payment}, nil, nil)
	if err != nil {
		return nil, err
	}
	out.Result.merge(res)
	return out, nil
}

// EjectPayment is voluntary premature termination (Alg. 2 line 60).
// The returned transactions depend on the stage: pre-payment
// settlements during lock/sign, τ during preUpdate/update, post-payment
// settlements during postUpdate/release.
func (e *Enclave) EjectPayment(pid wire.PaymentID) (*SettleResult, error) {
	mh, ok := e.state.Multihop[pid]
	if !ok {
		return nil, fmt.Errorf("core: unknown payment %s", pid)
	}
	if mh.Done {
		return nil, fmt.Errorf("core: payment %s already completed", pid)
	}
	up, down := e.mhChannels(mh)
	stage := MhIdle
	if down != nil {
		stage = down.Stage
	} else if up != nil {
		stage = up.Stage
	}
	switch stage {
	case MhLock, MhSign:
		return e.ejectLocalChannels(mh, false)
	case MhPreUpdate, MhUpdate:
		if mh.Tau == nil {
			return nil, errors.New("core: τ unavailable for ejection")
		}
		// Verify τ is fully signed before relying on it for settlement.
		tau := mh.Tau
		res := &SettleResult{Txs: []*chain.Transaction{tau}, Needs: [][]SigNeed{nil}, Result: &Result{}}
		for _, c := range []*ChannelState{up, down} {
			if c == nil {
				continue
			}
			r, err := e.commit(&Op{Kind: OpCloseChannel, Channel: c.ID}, nil, []Event{
				EvChannelClosed{Channel: c.ID, OffChain: false},
			})
			if err != nil {
				return nil, err
			}
			res.Result.merge(r)
		}
		res.Result.Events = append(res.Result.Events, EvSettlementReady{Tx: tau})
		r, err := e.commit(&Op{Kind: OpMhFinish, Payment: pid}, nil, nil)
		if err != nil {
			return nil, err
		}
		res.Result.merge(r)
		return res, nil
	case MhPostUpdate:
		return e.ejectLocalChannels(mh, true)
	default:
		return nil, fmt.Errorf("core: eject in stage %v is ordinary settlement (use Settle)", stage)
	}
}

// classifyPoPT decides whether popt settles a path channel at pre- or
// post-payment state. A post-payment individual settlement pays exactly
// the per-party outputs that τ pays for those deposits; anything else
// conflicting with τ is pre-payment.
func classifyPoPT(tau, popt *chain.Transaction) (post bool, err error) {
	if tau == nil {
		return false, errors.New("core: no τ to classify against")
	}
	if popt.SigHash() == tau.SigHash() {
		return false, errors.New("core: τ itself settles all channels; no ejection needed")
	}
	tauInputs := make(map[chain.OutPoint]bool, len(tau.Inputs))
	for _, in := range tau.Inputs {
		tauInputs[in.Prev] = true
	}
	if !popt.SpendsAnyOf(tauInputs) {
		return false, errors.New("core: transaction does not conflict with τ")
	}
	// Count τ's outputs; popt is post-payment iff all its outputs
	// appear among them.
	type outKey struct {
		value chain.Amount
		addr  [20]byte
	}
	avail := make(map[outKey]int, len(tau.Outputs))
	for _, o := range tau.Outputs {
		avail[outKey{o.Value, o.Script.Address()}]++
	}
	post = true
	for _, o := range popt.Outputs {
		k := outKey{o.Value, o.Script.Address()}
		if avail[k] == 0 {
			post = false
			break
		}
		avail[k]--
	}
	return post, nil
}

// EjectWithPoPT terminates after another participant prematurely
// settled (Alg. 2 line 66): popt, a conflicting settlement observed on
// the blockchain, authorizes settling our channels in the same
// (pre- or post-payment) state.
func (e *Enclave) EjectWithPoPT(pid wire.PaymentID, popt *chain.Transaction) (*SettleResult, error) {
	mh, ok := e.state.Multihop[pid]
	if !ok {
		return nil, fmt.Errorf("core: unknown payment %s", pid)
	}
	if mh.Done {
		return nil, fmt.Errorf("core: payment %s already completed", pid)
	}
	if popt == nil {
		return nil, errors.New("core: missing PoPT transaction")
	}
	post, err := classifyPoPT(mh.Tau, popt)
	if err != nil {
		return nil, err
	}
	// The PoPT must not be a settlement of our own channels — those we
	// observe directly via ObserveSpent.
	up, down := e.mhChannels(mh)
	own := make(map[chain.OutPoint]bool)
	for _, c := range []*ChannelState{up, down} {
		if c == nil {
			continue
		}
		for _, d := range append(append([]wire.DepositInfo{}, c.MyDeps...), c.RemoteDeps...) {
			own[d.Point] = true
		}
	}
	if popt.SpendsAnyOf(own) {
		return nil, errors.New("core: transaction settles our own channel; not a PoPT")
	}
	return e.ejectLocalChannels(mh, post)
}

// ObserveSpent informs the enclave that one of its channel deposits was
// spent on the blockchain by tx (the host watches deposit outpoints).
// If tx is a legitimate settlement of the channel (the counterparty
// settled unilaterally, or τ confirmed), the channel closes locally.
func (e *Enclave) ObserveSpent(point chain.OutPoint, tx *chain.Transaction) (*Result, error) {
	var target *ChannelState
	for _, c := range e.state.Channels {
		if c.Closed {
			continue
		}
		if c.findDep(c.MyDeps, point) >= 0 || c.findDep(c.RemoteDeps, point) >= 0 {
			target = c
			break
		}
	}
	if target == nil {
		// A free deposit released earlier, or an unknown spend.
		return &Result{}, nil
	}
	ev := []Event{EvChannelClosed{Channel: target.ID, OffChain: false}}
	res, err := e.commit(&Op{Kind: OpCloseChannel, Channel: target.ID}, nil, ev)
	if err != nil {
		return nil, err
	}
	if target.Payment != "" {
		if r, err2 := e.commit(&Op{Kind: OpMhFinish, Payment: target.Payment}, nil, nil); err2 == nil {
			res.merge(r)
		}
	}
	return res, nil
}
