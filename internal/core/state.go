// Package core implements the Teechain protocols: payment channels with
// dynamic deposit assignment (Alg. 1), multi-hop payments with proofs of
// premature termination (Alg. 2), force-freeze chain replication
// (Alg. 3), and committee chains combining replication with m-out-of-n
// threshold settlement (§6).
//
// The trusted side is Enclave, a message-driven state machine that runs
// identically under the discrete-event simulator and over real sockets.
// The untrusted side is Node, the host that owns transports, the
// blockchain interface, batching, retries, and routing.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"teechain/internal/chain"
	"teechain/internal/cryptoutil"
	"teechain/internal/wire"
)

// MhStage is a channel's position in the multi-hop payment protocol
// (Alg. 2). Settlement authorization depends on it: pre-payment
// settlements are valid in Lock/Sign, τ in PreUpdate/Update, and
// post-payment settlements in PostUpdate/Release.
type MhStage int

// Multi-hop stages, in protocol order.
const (
	MhIdle MhStage = iota
	MhLock
	MhSign
	MhPreUpdate
	MhUpdate
	MhPostUpdate
	MhTerminated
)

func (s MhStage) String() string {
	switch s {
	case MhIdle:
		return "idle"
	case MhLock:
		return "lock"
	case MhSign:
		return "sign"
	case MhPreUpdate:
		return "preUpdate"
	case MhUpdate:
		return "update"
	case MhPostUpdate:
		return "postUpdate"
	case MhTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// ChannelState is the replicated state of one payment channel from its
// owner's perspective (the c* maps of Alg. 1).
type ChannelState struct {
	ID         wire.ChannelID
	Remote     cryptoutil.PublicKey
	MyAddr     cryptoutil.Address
	RemoteAddr cryptoutil.Address
	Open       bool
	Closed     bool

	MyBal     chain.Amount
	RemoteBal chain.Amount

	MyDeps     []wire.DepositInfo
	RemoteDeps []wire.DepositInfo

	// Temp marks a temporary channel created to relieve lock contention
	// (§5.2).
	Temp bool

	// ClosePending marks a cooperative off-chain termination in
	// progress: once both deposit lists drain, the channel closes
	// without touching the blockchain (Alg. 1, lines 106-112).
	ClosePending bool

	// Multi-hop lock state for this channel.
	Stage   MhStage
	Payment wire.PaymentID

	// Cumulative payment totals per direction, maintained by Apply for
	// the three payment op kinds and replicated/persisted like the
	// balances. A crash-recovered endpoint reconciles with its peer
	// (ChanResume) by comparing the peer's cumulative receipts against
	// its own cumulative sends: the difference is exactly the optimistic
	// debits the peer never saw.
	SentAmt chain.Amount
	SentCnt uint64
	RecvAmt chain.Amount
	RecvCnt uint64

	// Resuming gates NEW outgoing payments while a crash-recovery
	// reconciliation (ChanResume) is in flight on the channel. Set on
	// the recovering side by RestoreDurable and on the surviving side
	// when a resume attestation replaces the peer's session; cleared
	// when the ChanResume exchange completes. Without the gate a
	// payment issued between session resume and reconciliation would be
	// counted into the peer's cumulative-send excess and wrongly
	// reverted. Checked only at the Pay/PayBatch entry points — never
	// in Apply — so WAL replay and mirror updates are unaffected.
	Resuming bool
}

// TotalDeposits returns the sum of all deposits associated with the
// channel.
func (c *ChannelState) TotalDeposits() chain.Amount {
	var total chain.Amount
	for _, d := range c.MyDeps {
		total += d.Value
	}
	for _, d := range c.RemoteDeps {
		total += d.Value
	}
	return total
}

// Neutral reports whether both balances equal their deposits, enabling
// off-chain termination (Alg. 1, line 106).
func (c *ChannelState) Neutral() bool {
	var mine, theirs chain.Amount
	for _, d := range c.MyDeps {
		mine += d.Value
	}
	for _, d := range c.RemoteDeps {
		theirs += d.Value
	}
	return c.MyBal == mine && c.RemoteBal == theirs
}

func (c *ChannelState) findDep(deps []wire.DepositInfo, p chain.OutPoint) int {
	for i, d := range deps {
		if d.Point == p {
			return i
		}
	}
	return -1
}

// DepositRecord tracks a deposit known to this enclave (allDeps /
// freeDeps of Alg. 1).
type DepositRecord struct {
	Info wire.DepositInfo
	// Free means unassociated with any channel.
	Free bool
	// Channel is the owning channel when not free.
	Channel wire.ChannelID
	// Released means spent back to the owner; terminal.
	Released bool
	// Dissociating marks an in-flight dissociation awaiting the remote
	// acknowledgement (PendingDeposits in the ideal functionality).
	Dissociating bool
}

// MultihopState tracks one in-flight multi-hop payment at one node.
type MultihopState struct {
	Payment wire.PaymentID
	Amount  chain.Amount
	Count   int
	Path    []wire.PathHop
	// Fees, when non-empty, aligns with Path: the forwarding fee each
	// hop keeps (zero at the endpoints). Empty for fee-free payments.
	Fees []chain.Amount
	// Index is this enclave's position on the path (0-based).
	Index int
	// Tau is the intermediate settlement transaction once seen.
	Tau *chain.Transaction
	// TauPostOutputs records, per path deposit input, which outputs τ
	// pays — used to classify PoPTs as pre- or post-payment.
	Done bool
}

// State is the complete replicable logical state of a Teechain enclave:
// everything a committee mirror needs to validate and authorize
// settlements on the owner's behalf. Private keys are deliberately NOT
// part of it — committee members hold their own keys (§6.1).
type State struct {
	Owner  cryptoutil.PublicKey
	Frozen bool
	// OwnerPayout is the owner's cold payout address: committee members
	// refuse to countersign deposit releases to any other destination,
	// which is what stops a compromised owner enclave from draining
	// free deposits.
	OwnerPayout cryptoutil.Address
	Channels    map[wire.ChannelID]*ChannelState
	Deposits    map[chain.OutPoint]*DepositRecord
	// ApprovedByMe holds remote deposits this enclave approved, per
	// remote identity (appDeps keyed the other way in Alg. 1).
	ApprovedByMe map[cryptoutil.PublicKey]map[chain.OutPoint]wire.DepositInfo
	// ApprovedMine holds own deposits approved by remotes.
	ApprovedMine map[cryptoutil.PublicKey]map[chain.OutPoint]bool
	Multihop     map[wire.PaymentID]*MultihopState
	// PayoutKeys maps settlement addresses to public keys so settlement
	// outputs can be constructed — including by committee mirrors after
	// the owner crashed. Exchanged out of band alongside identities and
	// replicated.
	PayoutKeys map[cryptoutil.Address]cryptoutil.PublicKey

	// lastCh is a one-entry channel lookup cache: payments hit the same
	// channel repeatedly, and comparing two equal IDs is far cheaper
	// than hashing one. Channels are never removed from the map (only
	// marked Closed), so the cache cannot go stale. Atomic because
	// socket hosts run payment lanes for different peers concurrently
	// (see concurrent.go); entries are read-shared, never torn.
	// Unexported, so gob replication and sealing ignore it.
	lastCh atomic.Pointer[ChannelState]
}

// NewState returns an empty state owned by the given enclave identity.
func NewState(owner cryptoutil.PublicKey) *State {
	return &State{
		Owner:        owner,
		Channels:     make(map[wire.ChannelID]*ChannelState),
		Deposits:     make(map[chain.OutPoint]*DepositRecord),
		ApprovedByMe: make(map[cryptoutil.PublicKey]map[chain.OutPoint]wire.DepositInfo),
		ApprovedMine: make(map[cryptoutil.PublicKey]map[chain.OutPoint]bool),
		Multihop:     make(map[wire.PaymentID]*MultihopState),
		PayoutKeys:   make(map[cryptoutil.Address]cryptoutil.PublicKey),
	}
}

// OpKind enumerates replicated state transitions.
type OpKind int

// Replicated operation kinds.
const (
	OpRegisterDeposit OpKind = iota + 1
	OpReleaseDeposit
	OpApproveRemote // I approved a remote's deposit
	OpApprovedMine  // a remote approved my deposit
	OpOpenChannel
	OpChannelOpened
	OpAssociateMine
	OpAssociateTheirs
	OpDissociateStart  // my side begins dissociating my deposit
	OpDissociateTheirs // remote side applies their dissociation
	OpDissociateAck    // remote acked; my deposit is free again
	OpPaySend
	OpPayRecv
	OpPayRevert // undo an optimistic debit after the peer nacked
	OpMhStart   // sender initiates a multi-hop payment
	OpMhStage   // stage transition (carries balances on MhUpdate)
	OpMhFinish
	OpSettleIntent // cooperative off-chain termination begins
	OpCloseChannel
	OpFreeze
	OpRegisterPayoutKey
)

func (k OpKind) String() string {
	names := map[OpKind]string{
		OpRegisterDeposit: "registerDeposit", OpReleaseDeposit: "releaseDeposit",
		OpApproveRemote: "approveRemote", OpApprovedMine: "approvedMine",
		OpOpenChannel: "openChannel", OpChannelOpened: "channelOpened",
		OpAssociateMine: "associateMine", OpAssociateTheirs: "associateTheirs",
		OpDissociateStart: "dissociateStart", OpDissociateTheirs: "dissociateTheirs",
		OpDissociateAck: "dissociateAck", OpPaySend: "paySend", OpPayRecv: "payRecv",
		OpPayRevert: "payRevert",
		OpMhStart:   "mhStart", OpMhStage: "mhStage", OpMhFinish: "mhFinish",
		OpSettleIntent: "settleIntent", OpCloseChannel: "closeChannel", OpFreeze: "freeze",
		OpRegisterPayoutKey: "registerPayoutKey",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one replicated state transition. A single struct with a kind
// switch keeps the replication pipeline simple and gob-friendly; unused
// fields are zero.
type Op struct {
	Kind    OpKind
	Channel wire.ChannelID
	Remote  cryptoutil.PublicKey
	Addr1   cryptoutil.Address // my settlement address / release target
	Addr2   cryptoutil.Address // remote settlement address
	Deposit wire.DepositInfo
	Amount  chain.Amount
	Count   int
	Payment wire.PaymentID
	Stage   MhStage
	Index   int
	Path    []wire.PathHop
	Tau     *chain.Transaction
	// Fees is the multi-hop forwarding fee schedule (OpMhStart only).
	Fees []chain.Amount
}

// WireSize estimates the op's encoded size for bandwidth modelling.
func (op *Op) WireSize() int {
	n := 64
	n += len(op.Path) * 65
	n += len(op.Fees) * 8
	if op.Tau != nil {
		n += op.Tau.WireSize()
	}
	if op.Deposit.Value != 0 {
		n += op.Deposit.Size()
	}
	return n
}

// Errors shared across state transitions.
var (
	ErrFrozen         = errors.New("core: enclave state is frozen")
	ErrUnknownChannel = errors.New("core: unknown channel")
	ErrChannelClosed  = errors.New("core: channel is closed")
	ErrChannelLocked  = errors.New("core: channel is locked by a multi-hop payment")
	ErrUnknownDeposit = errors.New("core: unknown deposit")
	ErrInsufficient   = errors.New("core: insufficient channel balance")
)

// Apply executes op against the state. It is the single transition
// function shared by primaries and committee mirrors, which is what
// keeps replicas bit-identical: both sides apply exactly the same ops in
// exactly the same order.
func (s *State) Apply(op *Op) error {
	if s.Frozen && op.Kind != OpFreeze {
		return ErrFrozen
	}
	switch op.Kind {
	case OpRegisterDeposit:
		if _, ok := s.Deposits[op.Deposit.Point]; ok {
			return fmt.Errorf("core: deposit %s already registered", op.Deposit.Point)
		}
		s.Deposits[op.Deposit.Point] = &DepositRecord{Info: op.Deposit, Free: true}
	case OpReleaseDeposit:
		d, ok := s.Deposits[op.Deposit.Point]
		if !ok {
			return ErrUnknownDeposit
		}
		if !d.Free || d.Dissociating {
			return fmt.Errorf("core: deposit %s is not free", op.Deposit.Point)
		}
		d.Free = false
		d.Released = true
	case OpApproveRemote:
		m := s.ApprovedByMe[op.Remote]
		if m == nil {
			m = make(map[chain.OutPoint]wire.DepositInfo)
			s.ApprovedByMe[op.Remote] = m
		}
		m[op.Deposit.Point] = op.Deposit
	case OpApprovedMine:
		m := s.ApprovedMine[op.Remote]
		if m == nil {
			m = make(map[chain.OutPoint]bool)
			s.ApprovedMine[op.Remote] = m
		}
		m[op.Deposit.Point] = true
	case OpOpenChannel:
		if _, ok := s.Channels[op.Channel]; ok {
			return fmt.Errorf("core: channel %s already exists", op.Channel)
		}
		s.Channels[op.Channel] = &ChannelState{
			ID:         op.Channel,
			Remote:     op.Remote,
			MyAddr:     op.Addr1,
			RemoteAddr: op.Addr2,
			Temp:       op.Count == 1, // Count doubles as the temp flag here
		}
	case OpChannelOpened:
		c, err := s.channel(op.Channel)
		if err != nil {
			return err
		}
		c.Open = true
		if !op.Addr2.IsZero() {
			c.RemoteAddr = op.Addr2
		}
	case OpAssociateMine:
		c, err := s.openChannel(op.Channel)
		if err != nil {
			return err
		}
		d, ok := s.Deposits[op.Deposit.Point]
		if !ok {
			return ErrUnknownDeposit
		}
		if !d.Free {
			return fmt.Errorf("core: deposit %s is not free", op.Deposit.Point)
		}
		d.Free = false
		d.Channel = op.Channel
		c.MyDeps = append(c.MyDeps, op.Deposit)
		c.MyBal += op.Deposit.Value
	case OpAssociateTheirs:
		c, err := s.openChannel(op.Channel)
		if err != nil {
			return err
		}
		if c.findDep(c.RemoteDeps, op.Deposit.Point) >= 0 {
			return fmt.Errorf("core: remote deposit %s already associated", op.Deposit.Point)
		}
		c.RemoteDeps = append(c.RemoteDeps, op.Deposit)
		c.RemoteBal += op.Deposit.Value
	case OpDissociateStart:
		// Matches the ideal functionality: the balance is deducted and
		// the deposit parked as pending immediately; it becomes free
		// only on the remote's acknowledgement.
		c, err := s.openChannel(op.Channel)
		if err != nil {
			return err
		}
		i := c.findDep(c.MyDeps, op.Deposit.Point)
		if i < 0 {
			return ErrUnknownDeposit
		}
		val := c.MyDeps[i].Value
		if c.MyBal < val {
			return ErrInsufficient
		}
		d := s.Deposits[op.Deposit.Point]
		if d == nil {
			return ErrUnknownDeposit
		}
		c.MyBal -= val
		c.MyDeps = append(c.MyDeps[:i], c.MyDeps[i+1:]...)
		d.Dissociating = true
	case OpDissociateTheirs:
		c, err := s.openChannel(op.Channel)
		if err != nil {
			return err
		}
		i := c.findDep(c.RemoteDeps, op.Deposit.Point)
		if i < 0 {
			return ErrUnknownDeposit
		}
		if c.RemoteBal < c.RemoteDeps[i].Value {
			return ErrInsufficient
		}
		c.RemoteBal -= c.RemoteDeps[i].Value
		c.RemoteDeps = append(c.RemoteDeps[:i], c.RemoteDeps[i+1:]...)
	case OpDissociateAck:
		d := s.Deposits[op.Deposit.Point]
		if d == nil {
			return ErrUnknownDeposit
		}
		if !d.Dissociating {
			return fmt.Errorf("core: deposit %s has no pending dissociation", op.Deposit.Point)
		}
		d.Dissociating = false
		d.Free = true
		d.Channel = ""
	case OpPaySend:
		c, err := s.openChannel(op.Channel)
		if err != nil {
			return err
		}
		if c.Stage != MhIdle {
			return ErrChannelLocked
		}
		if err := payGuard(c.MyBal, c.RemoteBal, op.Amount); err != nil {
			return err
		}
		c.MyBal -= op.Amount
		c.RemoteBal += op.Amount
		c.SentAmt += op.Amount
		c.SentCnt += uint64(op.Count)
	case OpPayRecv:
		c, err := s.openChannel(op.Channel)
		if err != nil {
			return err
		}
		if c.Stage != MhIdle {
			return ErrChannelLocked
		}
		if err := payGuard(c.RemoteBal, c.MyBal, op.Amount); err != nil {
			return err
		}
		c.RemoteBal -= op.Amount
		c.MyBal += op.Amount
		c.RecvAmt += op.Amount
		c.RecvCnt += uint64(op.Count)
	case OpPayRevert:
		// Reversal of an optimistic debit the peer rejected. The
		// "phantom" credit on our view of the remote balance cannot
		// have been spent by the remote (their own view never included
		// it), so the guard can only fail on protocol corruption.
		c, err := s.channel(op.Channel)
		if err != nil {
			return err
		}
		if err := payGuard(c.RemoteBal, c.MyBal, op.Amount); err != nil {
			return err
		}
		c.RemoteBal -= op.Amount
		c.MyBal += op.Amount
		c.SentAmt -= op.Amount
		c.SentCnt -= uint64(op.Count)
	case OpMhStart:
		if _, ok := s.Multihop[op.Payment]; ok {
			return fmt.Errorf("core: payment %s already exists", op.Payment)
		}
		s.Multihop[op.Payment] = &MultihopState{
			Payment: op.Payment,
			Amount:  op.Amount,
			Count:   op.Count,
			Path:    op.Path,
			Index:   op.Index,
			Fees:    op.Fees,
		}
	case OpMhStage:
		mh, ok := s.Multihop[op.Payment]
		if !ok {
			return fmt.Errorf("core: unknown payment %s", op.Payment)
		}
		if op.Tau != nil {
			mh.Tau = op.Tau
		}
		if op.Channel != "" {
			c, err := s.openChannel(op.Channel)
			if err != nil {
				return err
			}
			c.Stage = op.Stage
			c.Payment = op.Payment
			if op.Stage == MhUpdate && op.Amount != 0 {
				// Balance transfer applies exactly once per channel, at
				// the update stage (Alg. 2; positive = we receive).
				if op.Amount > 0 && c.RemoteBal < op.Amount {
					return ErrInsufficient
				}
				if op.Amount < 0 && c.MyBal < -op.Amount {
					return ErrInsufficient
				}
				c.MyBal += op.Amount
				c.RemoteBal -= op.Amount
			}
			if op.Stage == MhPostUpdate {
				// τ is discarded once the channel may settle
				// individually at post-payment state (Alg. 2 line 49).
				mh.Tau = nil
			}
			if op.Stage == MhIdle {
				c.Payment = ""
			}
		}
	case OpMhFinish:
		mh, ok := s.Multihop[op.Payment]
		if !ok {
			return fmt.Errorf("core: unknown payment %s", op.Payment)
		}
		mh.Done = true
		mh.Tau = nil
	case OpSettleIntent:
		c, err := s.openChannel(op.Channel)
		if err != nil {
			return err
		}
		c.ClosePending = true
	case OpCloseChannel:
		c, err := s.channel(op.Channel)
		if err != nil {
			return err
		}
		c.Closed = true
		c.Open = false
		for _, d := range c.MyDeps {
			if rec := s.Deposits[d.Point]; rec != nil {
				rec.Free = false
				rec.Released = true
			}
		}
	case OpFreeze:
		s.Frozen = true
	case OpRegisterPayoutKey:
		s.PayoutKeys[op.Remote.Address()] = op.Remote
	default:
		return fmt.Errorf("core: unknown op kind %v", op.Kind)
	}
	return nil
}

// payGuard validates one payment-op transfer of amount from debit to
// credit. Local entry points validate amounts before committing, so on
// a primary this is redundant belt-and-braces — but committee mirrors
// apply ops straight off the wire, where a forged non-positive amount
// would pass the one-sided balance guard vacuously and a huge one would
// wrap the credited balance (the same failure modes PR 3's sumBatch
// closed for payment batches).
func payGuard(debit, credit, amount chain.Amount) error {
	// Kept inlineable (the error construction is outlined): Apply runs
	// twice per payment on the simulator's hot path.
	if amount <= 0 || debit < amount || credit > math.MaxInt64-amount {
		return payGuardErr(debit, credit, amount)
	}
	return nil
}

//go:noinline
func payGuardErr(debit, credit, amount chain.Amount) error {
	if amount <= 0 {
		return fmt.Errorf("core: invalid replicated payment amount %d", amount)
	}
	if debit < amount {
		return ErrInsufficient
	}
	return fmt.Errorf("core: payment of %d overflows balance %d", amount, credit)
}

func (s *State) channel(id wire.ChannelID) (*ChannelState, error) {
	if c := s.lastCh.Load(); c != nil && c.ID == id {
		return c, nil
	}
	c, ok := s.Channels[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownChannel, id)
	}
	s.lastCh.Store(c)
	return c, nil
}

func (s *State) openChannel(id wire.ChannelID) (*ChannelState, error) {
	c, err := s.channel(id)
	if err != nil {
		return nil, err
	}
	if c.Closed {
		return nil, fmt.Errorf("%w: %s", ErrChannelClosed, id)
	}
	if !c.Open {
		return nil, fmt.Errorf("core: channel %s not yet open", id)
	}
	return c, nil
}

// PerceivedBalance is the user's total recoverable value as defined for
// balance correctness (Appendix A): channel balances plus free and
// dissociating deposits. Released deposits are excluded (already back on
// chain).
func (s *State) PerceivedBalance() chain.Amount {
	var total chain.Amount
	for _, c := range s.Channels {
		if !c.Closed {
			total += c.MyBal
		}
	}
	for _, d := range s.Deposits {
		if (d.Free || d.Dissociating) && !d.Released {
			total += d.Info.Value
		}
	}
	return total
}
