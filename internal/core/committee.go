package core

import (
	"errors"
	"fmt"

	"teechain/internal/chain"
	"teechain/internal/cryptoutil"
	"teechain/internal/wire"
)

// This file implements committee chains (§6): formation of the
// replication chain, member-side mirroring, and threshold
// countersigning of settlement transactions.

// FormCommittee configures this enclave's replication chain / committee
// with the given members (in chain order, excluding this enclave) and
// signature threshold m over n = len(members)+1 keys. Members must be
// attested already. The committee becomes usable once every member
// returns its blockchain key (EvCommitteeReady).
func (e *Enclave) FormCommittee(members []cryptoutil.PublicKey, m int) (*Result, error) {
	if e.state.Frozen {
		return nil, ErrFrozen
	}
	if e.repl != nil {
		return nil, errors.New("core: committee already formed")
	}
	n := len(members) + 1
	if m < 1 || m > n {
		return nil, fmt.Errorf("core: invalid threshold %d-of-%d", m, n)
	}
	// attachSeq is the log cursor the attach snapshot covers; members
	// seed their mirror cursor from it so the stream resumes at
	// attachSeq+1 (nonzero only for a durable owner's unified log).
	var attachSeq uint64
	for _, peer := range members {
		if _, err := e.session(peer); err != nil {
			return nil, err
		}
	}
	all := append([]cryptoutil.PublicKey{e.identity.Public()}, members...)
	e.repl = &replPrimary{
		chainID:       e.ChainID(),
		members:       all,
		m:             m,
		memberBtcKeys: make(map[cryptoutil.PublicKey]cryptoutil.PublicKey),
	}
	if e.wal != nil {
		// Durable enclave: adopt the WAL log wholesale so replication
		// and durability share one sequence space and one ring of
		// withheld effects (released only once every enabled cursor
		// passes an entry). The combined notify wakes both flushers.
		log := e.wal.log
		if walNotify, replNotify := log.notify, e.replNotify; replNotify != nil {
			if walNotify != nil {
				log.notify = func() { walNotify(); replNotify() }
			} else {
				log.notify = replNotify
			}
		}
		// Pre-formation ops ride the ReplAttach snapshot, not the
		// replication stream — and a durable log is always pipelined,
		// so appends never advanced flushSeq. Jump the replication
		// cursors to the committed frontier.
		log.mu.Lock()
		log.flushSeq = log.nextSeq
		log.ackSeq = log.nextSeq
		attachSeq = log.nextSeq
		log.mu.Unlock()
		e.repl.log = log
	} else {
		// A host that opted into pipelined replication before formation
		// (EnableReplPipeline) gets the chain's log in pipelined mode.
		e.repl.log = &replLog{pipelined: e.replPipelined, notify: e.replNotify}
	}
	if len(members) == 0 {
		e.repl.ready = true
		return &Result{Events: []Event{EvCommitteeReady{Chain: e.repl.chainID}}}, nil
	}
	snap, err := e.snapshotState()
	if err != nil {
		return nil, err
	}
	hops := make([]wire.PathHop, len(all))
	for i, id := range all {
		hops[i] = wire.PathHop{Identity: id}
	}
	res := &Result{}
	for _, peer := range members {
		res.Out = append(res.Out, Outbound{To: peer, Msg: &wire.ReplAttach{
			Chain:    e.repl.chainID,
			Members:  hops,
			M:        m,
			Payout:   e.state.OwnerPayout,
			Snapshot: snap,
			Seq:      attachSeq,
		}})
	}
	return res, nil
}

// CommitteeReady reports whether deposits can be created under the
// committee's scripts.
func (e *Enclave) CommitteeReady() bool {
	return e.repl != nil && e.repl.ready
}

// MirrorCount reports how many chains this enclave serves as a
// committee member / backup for.
func (e *Enclave) MirrorCount() int { return len(e.backups) }

func (e *Enclave) handleReplAttach(from cryptoutil.PublicKey, m *wire.ReplAttach) (*Result, error) {
	if len(m.Members) < 2 {
		return nil, errors.New("core: replication chain needs at least two members")
	}
	owner := m.Members[0].Identity
	if owner != from {
		return nil, errors.New("core: replication attach must come from the chain owner")
	}
	myIndex := -1
	members := make([]cryptoutil.PublicKey, len(m.Members))
	for i, hop := range m.Members {
		members[i] = hop.Identity
		if hop.Identity == e.identity.Public() {
			myIndex = i
		}
	}
	if myIndex <= 0 {
		return nil, errors.New("core: not listed as a member of the chain")
	}
	if _, ok := e.backups[m.Chain]; ok {
		return nil, fmt.Errorf("core: already a member of chain %s", m.Chain)
	}
	mirror, err := decodeState(m.Snapshot)
	if err != nil {
		return nil, err
	}
	if mirror.Owner != owner || mirror.OwnerPayout != m.Payout {
		return nil, errors.New("core: snapshot owner does not match chain owner")
	}
	btcKey, err := e.newBtcKey()
	if err != nil {
		return nil, err
	}
	e.backups[m.Chain] = &replBackup{
		chainID:     m.Chain,
		members:     members,
		m:           m.M,
		myIndex:     myIndex,
		mirror:      mirror,
		btcKey:      btcKey,
		lastSeq:     m.Seq, // the snapshot covers the stream up to here
		digBase:     m.Seq, // sequences inside the snapshot are unverifiable
		pendingSigs: make(map[uint64][]wire.TauSig),
	}
	return &Result{Out: oneOut(from, &wire.ReplAttachAck{Chain: m.Chain, BtcKey: btcKey.Public()})}, nil
}

func (e *Enclave) handleReplAttachAck(from cryptoutil.PublicKey, m *wire.ReplAttachAck) (*Result, error) {
	if e.repl == nil || e.repl.chainID != m.Chain {
		return nil, fmt.Errorf("core: attach ack for unknown chain %s", m.Chain)
	}
	isMember := false
	for _, id := range e.repl.members[1:] {
		if id == from {
			isMember = true
			break
		}
	}
	if !isMember {
		return nil, errors.New("core: attach ack from non-member")
	}
	if _, ok := e.repl.memberBtcKeys[from]; ok {
		return nil, errors.New("core: duplicate attach ack")
	}
	e.repl.memberBtcKeys[from] = m.BtcKey
	if len(e.repl.memberBtcKeys) == len(e.repl.members)-1 {
		e.repl.ready = true
		return &Result{Events: []Event{EvCommitteeReady{Chain: m.Chain}}}, nil
	}
	return &Result{}, nil
}

// handleSigRequest is the committee member's countersigning path: it
// validates the proposed settlement against the mirrored owner state
// and, only if consistent, contributes its threshold signature. This
// check is what confines a compromised owner enclave: with fewer than
// m cooperating keys, no stale or fabricated settlement reaches the
// blockchain (§6.1).
func (e *Enclave) handleSigRequest(from cryptoutil.PublicKey, m *wire.SigRequest) (*Result, error) {
	if m.Tx == nil || m.Input < 0 || m.Input >= len(m.Tx.Inputs) {
		return nil, errors.New("core: malformed signature request")
	}
	txID := m.Tx.ID()
	refuse := func(reason string) *Result {
		return &Result{Out: oneOut(from, &wire.SigResponse{
			Chain: m.Chain, TxID: txID, Input: m.Input, Refused: true, Reason: reason,
		})}
	}
	rec, mirror, err := e.lookupCommitteeDeposit(m.Chain, m.Tx.Inputs[m.Input].Prev)
	if err != nil {
		return refuse(err.Error()), nil
	}
	if err := authorizeSettlement(mirror, m.Tx); err != nil {
		return refuse(err.Error()), nil
	}
	signKey, slot := e.committeeSignKey(m.Chain, rec.Info.Script)
	if signKey == nil {
		return refuse("no committee key for this deposit script"), nil
	}
	cp := m.Tx.Clone()
	if err := cp.SignInput(m.Input, rec.Info.Script, signKey); err != nil {
		return nil, err
	}
	return &Result{Out: oneOut(from, &wire.SigResponse{
		Chain: m.Chain,
		TxID:  txID,
		Input: m.Input,
		Slot:  slot,
		Sig:   cp.Inputs[m.Input].Sigs[slot],
	})}, nil
}

// lookupCommitteeDeposit resolves a deposit record and the state to
// validate against for a chain this enclave participates in — as a
// committee member (mirror) or as the chain's own primary (a
// counterparty collecting signatures may ask the owner too).
func (e *Enclave) lookupCommitteeDeposit(chainID string, point chain.OutPoint) (*DepositRecord, *State, error) {
	if b, ok := e.backups[chainID]; ok {
		rec, ok := b.mirror.Deposits[point]
		if !ok {
			return nil, nil, errors.New("input does not spend a mirrored deposit")
		}
		return rec, b.mirror, nil
	}
	if e.repl != nil && e.repl.chainID == chainID {
		rec, ok := e.state.Deposits[point]
		if !ok {
			return nil, nil, errors.New("input does not spend an owned deposit")
		}
		return rec, e.state, nil
	}
	return nil, nil, fmt.Errorf("not a member of chain %s", chainID)
}

// committeeSignKey picks the key this enclave contributes to a deposit
// script: its committee member key, or (as the chain owner) the
// per-deposit owner key.
func (e *Enclave) committeeSignKey(chainID string, script chain.Script) (*cryptoutil.KeyPair, int) {
	if b, ok := e.backups[chainID]; ok && b.btcKey != nil {
		pub := b.btcKey.Public()
		for j, k := range script.Keys {
			if k == pub {
				return b.btcKey, j
			}
		}
		return nil, -1
	}
	for j, k := range script.Keys {
		if kp, ok := e.btcKeys[k.Address()]; ok {
			return kp, j
		}
	}
	return nil, -1
}

// handleSigResponse records a committee signature into a transaction
// the host is completing. The enclave tracks outstanding collections by
// sighash.
func (e *Enclave) handleSigResponse(from cryptoutil.PublicKey, m *wire.SigResponse) (*Result, error) {
	if m.Refused {
		return &Result{Events: []Event{EvSigRefused{From: from, Reason: m.Reason}}}, nil
	}
	col, ok := e.sigCollections[m.TxID]
	if !ok {
		return nil, fmt.Errorf("core: signature response for unknown collection %s", m.TxID)
	}
	if m.Input < 0 || m.Input >= len(col.tx.Inputs) {
		return nil, errors.New("core: signature response input out of range")
	}
	in := &col.tx.Inputs[m.Input]
	script := col.scripts[m.Input]
	if m.Slot < 0 || m.Slot >= len(script.Keys) {
		return nil, errors.New("core: signature response slot out of range")
	}
	if len(in.Sigs) != len(script.Keys) {
		in.Sigs = make([]cryptoutil.Signature, len(script.Keys))
	}
	digest := col.tx.SigHash()
	if !cryptoutil.Verify(script.Keys[m.Slot], digest[:], m.Sig) {
		return nil, errors.New("core: committee signature invalid")
	}
	in.Sigs[m.Slot] = m.Sig
	col.pending--
	if col.pending <= 0 {
		delete(e.sigCollections, m.TxID)
		// Verify every input is now satisfied before declaring success.
		for i, s := range col.scripts {
			if err := col.tx.VerifyInput(i, s); err != nil {
				return nil, fmt.Errorf("core: completed settlement still unsatisfied: %w", err)
			}
		}
		return &Result{Events: []Event{EvSigComplete{Tx: col.tx}}}, nil
	}
	return &Result{}, nil
}

// sigCollection tracks an in-progress threshold signature gathering.
type sigCollection struct {
	tx      *chain.Transaction
	scripts []chain.Script
	pending int
}

// CollectSignatures starts gathering committee signatures for the
// unsatisfied inputs of a settlement transaction. It returns the
// SigRequest messages to send; EvSigComplete fires when the
// transaction becomes submittable.
func (e *Enclave) CollectSignatures(tx *chain.Transaction, deps []wire.DepositInfo, needs []SigNeed) (*Result, error) {
	if len(needs) == 0 {
		return &Result{Events: []Event{EvSigComplete{Tx: tx}}}, nil
	}
	col := &sigCollection{tx: tx}
	col.scripts = make([]chain.Script, len(tx.Inputs))
	for i, d := range deps {
		col.scripts[i] = d.Script
	}
	res := &Result{}
	for _, need := range needs {
		d := deps[need.Input]
		// Ask exactly enough members to reach the threshold beyond the
		// signatures already present.
		have := 0
		if need.Input < len(tx.Inputs) {
			for _, s := range tx.Inputs[need.Input].Sigs {
				if !s.IsZero() {
					have++
				}
			}
		}
		wanted := d.Script.M - have
		if wanted <= 0 {
			continue
		}
		asked := 0
		for _, member := range need.Members {
			if asked >= wanted {
				break
			}
			if _, err := e.session(member); err != nil {
				continue
			}
			// Each member receives its own clone: the canonical tx is
			// mutated as signatures arrive, and in-memory transports
			// share pointers.
			res.Out = append(res.Out, Outbound{To: member, Msg: &wire.SigRequest{
				Chain: need.Committee, Tx: tx.Clone(), Input: need.Input,
			}})
			asked++
			col.pending++
		}
		if asked < wanted {
			return nil, fmt.Errorf("core: cannot reach threshold for input %d: need %d more signers, reached %d",
				need.Input, wanted, asked)
		}
	}
	if col.pending == 0 {
		return &Result{Events: []Event{EvSigComplete{Tx: tx}}}, nil
	}
	e.sigCollections[tx.ID()] = col
	return res, nil
}

// MirrorState exposes a committee mirror for the host (failover
// settlement and tests).
func (e *Enclave) MirrorState(chainID string) (*State, bool) {
	b, ok := e.backups[chainID]
	if !ok {
		return nil, false
	}
	return b.mirror, true
}

// SettleFromMirror builds settlement transactions for every open
// channel in a mirrored (frozen) state — the failover path when the
// chain owner has crashed: any live member can settle the owner's
// channels at their last replicated balances (§6).
func (e *Enclave) SettleFromMirror(chainID string) ([]*chain.Transaction, [][]wire.DepositInfo, error) {
	b, ok := e.backups[chainID]
	if !ok {
		return nil, nil, fmt.Errorf("core: not a member of chain %s", chainID)
	}
	if !b.frozen {
		return nil, nil, errors.New("core: chain must be frozen before mirror settlement (force-freeze)")
	}
	var txs []*chain.Transaction
	var depsPerTx [][]wire.DepositInfo
	for _, c := range b.mirror.Channels {
		if c.Closed || !c.Open || len(c.MyDeps)+len(c.RemoteDeps) == 0 {
			continue
		}
		myKey, ok := lookupKey(b.mirror, c.MyAddr)
		if !ok {
			return nil, nil, fmt.Errorf("core: mirror has no payout key for %s", c.MyAddr)
		}
		remoteKey, ok2 := lookupKey(b.mirror, c.RemoteAddr)
		if !ok2 {
			return nil, nil, fmt.Errorf("core: mirror has no payout key for %s", c.RemoteAddr)
		}
		tx, deps, err := buildChannelSettlement(c, c.MyBal, c.RemoteBal, myKey, remoteKey)
		if err != nil {
			return nil, nil, err
		}
		// Contribute our own signature where our committee key is in
		// the script.
		for i, d := range deps {
			for _, k := range d.Script.Keys {
				if k == b.btcKey.Public() {
					if err := tx.SignInput(i, d.Script, b.btcKey); err != nil {
						return nil, nil, err
					}
				}
			}
		}
		txs = append(txs, tx)
		depsPerTx = append(depsPerTx, deps)
	}
	return txs, depsPerTx, nil
}

// lookupKey resolves a settlement address to its public key using the
// payout keys recorded in the replicated state.
func lookupKey(st *State, addr cryptoutil.Address) (cryptoutil.PublicKey, bool) {
	k, ok := st.PayoutKeys[addr]
	return k, ok
}

// EvSigRefused reports a committee member declining to countersign; the
// host may retry with other members or investigate.
type EvSigRefused struct {
	From   cryptoutil.PublicKey
	Reason string
}

// --- Post-recovery committee resync (§6.2 durable mode) ---

// ReplResyncStart re-seeds every committee member's mirror with this
// crash-recovered primary's state, resuming replication from the
// persisted cursor. Mirrors the primary lost contact with may be AHEAD
// of the recovered state (ops flushed but not yet fsynced before the
// crash) — replacing them wholesale is safe because the primary never
// released the effects of those ops, so nothing external depends on
// them. EvReplResynced fires once every member acknowledges.
func (e *Enclave) ReplResyncStart() (*Result, error) {
	if e.repl == nil {
		return nil, errors.New("core: no committee to resync")
	}
	if e.state.Frozen {
		return nil, ErrFrozen
	}
	if len(e.repl.members) < 2 {
		return &Result{Events: []Event{EvReplResynced{Chain: e.repl.chainID}}}, nil
	}
	snap, err := e.snapshotState()
	if err != nil {
		return nil, err
	}
	l := e.repl.log
	l.mu.Lock()
	seq := l.nextSeq
	l.mu.Unlock()
	res := &Result{}
	for _, peer := range e.repl.members[1:] {
		if _, err := e.session(peer); err != nil {
			return nil, err
		}
		res.Out = append(res.Out, Outbound{To: peer, Msg: &wire.ReplResync{
			Chain: e.repl.chainID, Snapshot: snap, Seq: seq,
		}})
	}
	e.repl.resyncPending = len(e.repl.members) - 1
	e.repl.resyncSeq = seq
	return res, nil
}

func (e *Enclave) handleReplResync(from cryptoutil.PublicKey, m *wire.ReplResync) (*Result, error) {
	b, ok := e.backups[m.Chain]
	if !ok {
		return nil, fmt.Errorf("core: not a member of chain %s", m.Chain)
	}
	if from != b.members[0] {
		return nil, errors.New("core: resync must come from the chain owner")
	}
	mirror, err := decodeState(m.Snapshot)
	if err != nil {
		return nil, err
	}
	if mirror.Owner != from || mirror.OwnerPayout != b.mirror.OwnerPayout {
		return nil, errors.New("core: resync snapshot does not match chain owner")
	}
	b.mirror = mirror
	b.lastSeq = m.Seq
	b.frozen = false
	clear(b.pendingSigs)
	// The wholesale snapshot supersedes everything the self-healing
	// machinery buffered or remembered about the old stream.
	b.held = nil
	b.digests = nil
	b.digBase = m.Seq
	b.replProgress()
	return &Result{Out: oneOut(from, &wire.ReplResyncAck{Chain: m.Chain, Seq: m.Seq})}, nil
}

func (e *Enclave) handleReplResyncAck(from cryptoutil.PublicKey, m *wire.ReplResyncAck) (*Result, error) {
	if e.repl == nil || e.repl.chainID != m.Chain {
		return nil, fmt.Errorf("core: resync ack for unknown chain %s", m.Chain)
	}
	isMember := false
	for _, id := range e.repl.members[1:] {
		if id == from {
			isMember = true
			break
		}
	}
	if !isMember {
		return nil, errors.New("core: resync ack from non-member")
	}
	if e.repl.resyncPending <= 0 {
		return &Result{}, nil
	}
	e.repl.resyncPending--
	if e.repl.resyncPending == 0 {
		// Every member adopted the snapshot at resyncSeq, so everything
		// up to it is replicated: advance the ack (and flush) cursor
		// there and release the covered withheld effects. After crash
		// recovery the log is empty and this is a no-op; after a live
		// stall (watchdog self-heal) it is exactly what un-wedges the
		// window — the acks the lost frame's batch would have produced.
		res := e.pools.getResult()
		res.Events = append(res.Events, EvReplResynced{Chain: m.Chain})
		l := e.repl.log
		l.mu.Lock()
		if s := e.repl.resyncSeq; s > l.ackSeq {
			l.ackSeq = s
			if l.flushSeq < s {
				l.flushSeq = s
			}
		}
		target := l.releaseTargetLocked(true)
		l.mu.Unlock()
		e.releaseTo(l, target, res)
		return res, nil
	}
	return &Result{}, nil
}
