package core

import (
	"testing"
	"time"

	"teechain/internal/cryptoutil"
	"teechain/internal/netsim"
	"teechain/internal/wire"
)

func TestOutsourcedClientPaysViaRemoteEnclave(t *testing.T) {
	w := newWorld(t)
	remote := w.node("remote-tee", NodeConfig{Enclave: Config{AllowOutsource: true, MinConfirmations: 1}})
	bob := w.node("bob", NodeConfig{})
	w.connect(remote, bob)
	id := w.openChannel(remote, bob)
	w.fundAndAssociate(remote, bob, id, 1000)

	client, err := NewClient("dave", w.net, w.dir, w.auth)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Attach(remote); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	w.until(client.Attached)

	var latency time.Duration
	okCh := false
	if err := client.Pay(id, 100, 1, func(ok bool, lat time.Duration, _ string) {
		okCh = ok
		latency = lat
	}); err != nil {
		t.Fatalf("client Pay: %v", err)
	}
	w.run()
	if !okCh {
		t.Fatal("outsourced payment not acknowledged")
	}
	// Client -> remote (one way) + channel round trip + remote ->
	// client: 2 RTT total on equal links.
	if latency < 20*time.Millisecond {
		t.Fatalf("outsourced latency %v implausibly low", latency)
	}
	myB, _ := channelBal(t, bob, id)
	if myB != 100 {
		t.Fatalf("bob balance %d, want 100", myB)
	}
}

func TestOutsourceRejectsSecondUserAndForeignCommands(t *testing.T) {
	w := newWorld(t)
	remote := w.node("remote-tee", NodeConfig{Enclave: Config{AllowOutsource: true, MinConfirmations: 1}})
	bob := w.node("bob", NodeConfig{})
	w.connect(remote, bob)
	id := w.openChannel(remote, bob)
	w.fundAndAssociate(remote, bob, id, 1000)

	dave, err := NewClient("dave", w.net, w.dir, w.auth)
	if err != nil {
		t.Fatal(err)
	}
	if err := dave.Attach(remote); err != nil {
		t.Fatal(err)
	}
	w.until(dave.Attached)

	eve, err := NewClient("eve", w.net, w.dir, w.auth)
	if err != nil {
		t.Fatal(err)
	}
	if err := eve.Attach(remote); err != nil {
		t.Fatal(err)
	}
	w.run()
	if eve.Attached() {
		t.Fatal("second outsourced user attached")
	}

	// Eve forges a command claiming dave's identity but cannot produce
	// a valid token or sealed payload.
	env := &Envelope{From: dave.Identity(), Msg: &wire.OutsourceCmd{Seq: 99, Payload: []byte("junk")}, Token: []byte("junk")}
	if err := w.net.Send(eve.ID, remote.ID, env, env.WireSize()); err != nil {
		t.Fatal(err)
	}
	w.run()
	myB, _ := channelBal(t, bob, id)
	if myB != 0 {
		t.Fatal("forged outsourced command moved funds")
	}
}

func TestOutsourceDisabledByPolicy(t *testing.T) {
	w := newWorld(t)
	remote := w.node("remote-tee", NodeConfig{}) // outsourcing off
	dave, err := NewClient("dave", w.net, w.dir, w.auth)
	if err != nil {
		t.Fatal(err)
	}
	if err := dave.Attach(remote); err != nil {
		t.Fatal(err)
	}
	w.run()
	if dave.Attached() {
		t.Fatal("attached to an enclave with outsourcing disabled")
	}
}

func TestTempChannelsAbsorbConcurrentPayments(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	c := w.node("carol", NodeConfig{})
	w.pipeline(1000, a, b, c)

	// Add 2 temporary channels on each hop.
	for _, hop := range [][2]*Node{{a, b}, {b, c}} {
		if _, err := hop[0].CreateTempChannels(hop[1], 2, 500); err != nil {
			t.Fatalf("CreateTempChannels: %v", err)
		}
		w.run()
		if err := hop[0].FinishTempChannels(); err != nil {
			t.Fatalf("FinishTempChannels: %v", err)
		}
		w.run()
		if err := hop[0].AssociateTempDeposits(); err != nil {
			t.Fatalf("AssociateTempDeposits: %v", err)
		}
		w.run()
	}

	// Three concurrent payments a->c: with only primary channels two
	// would abort on locks; with G=2 temp channels all can proceed.
	okCount := 0
	for i := 0; i < 3; i++ {
		if err := a.PayMultihop([][]cryptoutil.PublicKey{identityPath(a, b, c)}, 10, 1,
			func(ok bool, _ time.Duration, reason string) {
				if ok {
					okCount++
				}
			}); err != nil {
			t.Fatal(err)
		}
	}
	w.run()
	if okCount != 3 {
		t.Fatalf("%d/3 concurrent payments succeeded with temp channels", okCount)
	}
}

func TestMergeTempChannelOffChain(t *testing.T) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	w.connect(a, b)
	primary := w.openChannel(a, b)
	w.fundAndAssociate(a, b, primary, 1000)
	w.fundAndAssociate(b, a, primary, 1000)

	temps, err := a.CreateTempChannels(b, 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	w.run()
	if err := a.FinishTempChannels(); err != nil {
		t.Fatal(err)
	}
	w.run()
	if err := a.AssociateTempDeposits(); err != nil {
		t.Fatal(err)
	}
	w.run()

	// Imbalance the temp channel.
	if err := a.Pay(temps[0], 120, nil); err != nil {
		t.Fatal(err)
	}
	w.run()

	if err := a.MergeTempChannel(b, temps[0], primary); err != nil {
		t.Fatalf("MergeTempChannel: %v", err)
	}
	w.run()
	if err := a.CompleteMerges(); err != nil {
		t.Fatalf("CompleteMerges: %v", err)
	}
	w.run()

	ct := a.Enclave().State().Channels[temps[0]]
	if !ct.Closed {
		t.Fatal("temp channel not closed")
	}
	// The imbalance moved to the primary channel: alice paid 120 net.
	my, _ := channelBal(t, a, primary)
	if my != 1000-120 {
		t.Fatalf("alice primary balance %d, want 880", my)
	}
	// Nothing hit the chain.
	w.chain.MineBlock()
	if w.chain.BalanceByAddress(a.wallet.Address()) != 0 || w.chain.BalanceByAddress(b.wallet.Address()) != 0 {
		t.Fatal("temp channel merge touched the blockchain")
	}
}

func TestRouterPaths(t *testing.T) {
	r := NewRouter()
	mk := func(s string) cryptoutil.PublicKey {
		var k cryptoutil.PublicKey
		copy(k[:], s)
		return k
	}
	a, b, c, d, e := mk("a"), mk("b"), mk("c"), mk("d"), mk("e")
	// a-b-c and a-d-e-c
	r.AddChannel(a, b)
	r.AddChannel(b, c)
	r.AddChannel(a, d)
	r.AddChannel(d, e)
	r.AddChannel(e, c)

	sp := r.ShortestPath(a, c)
	if len(sp) != 3 || sp[0] != a || sp[1] != b || sp[2] != c {
		t.Fatalf("shortest path wrong: %v", len(sp))
	}
	paths := r.Paths(a, c, 4, 2)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	if len(paths[0]) > len(paths[1]) {
		t.Fatal("paths not ordered by length")
	}
	if r.ShortestPath(a, mk("zz")) != nil {
		t.Fatal("path to unknown node")
	}
	// Removal disconnects.
	r.RemoveChannel(b, c)
	sp = r.ShortestPath(a, c)
	if len(sp) != 4 {
		t.Fatalf("after removal path length %d, want 4", len(sp))
	}
	if p := r.ShortestPath(a, a); len(p) != 1 {
		t.Fatal("self path wrong")
	}
}

var _ = netsim.NodeID("") // keep import when tests shrink
