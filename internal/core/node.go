package core

import (
	"errors"
	"fmt"
	"time"

	"teechain/internal/chain"
	"teechain/internal/cryptoutil"
	"teechain/internal/netsim"
	"teechain/internal/sim"
	"teechain/internal/tee"
	"teechain/internal/wire"
)

// Directory is the out-of-band identity exchange the paper assumes:
// it maps enclave identity keys to network locations and carries payout
// keys. All hosts in a deployment share one.
type Directory struct {
	byIdentity map[cryptoutil.PublicKey]netsim.NodeID
	byNode     map[netsim.NodeID]cryptoutil.PublicKey
	// pools is the deployment-wide hot-path object pool: the directory
	// is the one structure every node of a deployment shares.
	pools *hotPools
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		byIdentity: make(map[cryptoutil.PublicKey]netsim.NodeID),
		byNode:     make(map[netsim.NodeID]cryptoutil.PublicKey),
		pools:      newHotPools(),
	}
}

// Register binds an identity to a network node.
func (d *Directory) Register(id cryptoutil.PublicKey, node netsim.NodeID) {
	d.byIdentity[id] = node
	d.byNode[node] = id
}

// NodeOf resolves an identity to its network node.
func (d *Directory) NodeOf(id cryptoutil.PublicKey) (netsim.NodeID, bool) {
	n, ok := d.byIdentity[id]
	return n, ok
}

// IdentityOf resolves a network node to its enclave identity.
func (d *Directory) IdentityOf(node netsim.NodeID) (cryptoutil.PublicKey, bool) {
	id, ok := d.byNode[node]
	return id, ok
}

// Envelope is the unit the host transports: a protocol message plus the
// session freshness token produced by the sending enclave.
type Envelope struct {
	From  cryptoutil.PublicKey
	Msg   wire.Message
	Token []byte

	// pooled marks envelopes obtained from getEnvelope. Only those are
	// recycled on release: hosts send each pooled envelope exactly once,
	// while externally constructed envelopes (tests model replay attacks
	// by delivering one envelope twice) are left to the garbage
	// collector, so a duplicate delivery can never alias a recycled one.
	pooled bool
}

// WireSize implements the sizing interface for bandwidth modelling.
func (env *Envelope) WireSize() int {
	n := 65 + len(env.Token)
	if s, ok := env.Msg.(wire.Message); ok {
		n += s.WireSize()
	}
	return n
}

// NodeConfig bundles host-level policy.
type NodeConfig struct {
	Enclave Config
	// BatchWindow, when positive, enables client-side payment batching
	// with that flush interval (§7.2 uses 100 ms).
	BatchWindow time.Duration
	// RetryMin/RetryMax bound the randomized multi-hop retry backoff
	// (the paper uses 100–200 ms, §7.4).
	RetryMin, RetryMax time.Duration
	// MaxRetries bounds multi-hop retry attempts (0 = no retries).
	MaxRetries int
	// Seed differentiates per-node randomness.
	Seed uint64
}

// PayDone reports the fate of a payment to its issuer.
type PayDone func(ok bool, latency time.Duration, reason string)

// batchEntry tracks one logical payment inside a batch with its issue
// time, so acknowledgement latency covers the batching wait the user
// actually experienced.
type batchEntry struct {
	done     PayDone
	issuedAt sim.Time
}

type pendingBatch struct {
	amount  chain.Amount
	count   int
	entries []batchEntry
	timer   *sim.Event
}

type inflightBatch struct {
	count   int
	entries []batchEntry
	sentAt  sim.Time
}

// chanRuntime is the host's per-channel bookkeeping, merged into one
// record so the payment path pays one map lookup instead of three. The
// in-flight queue pops from head and compacts when drained, keeping one
// backing array per channel in steady state.
type chanRuntime struct {
	batch    *pendingBatch
	inflight []*inflightBatch
	head     int
}

// peerRoute caches what the host needs per attested peer: its network
// endpoint (dense netsim handle) and, once established, the transport
// session used to seal freshness tokens. One identity-key map lookup
// replaces the directory, endpoint, and session lookups per message.
type peerRoute struct {
	ep   *netsim.Endpoint
	sess *peerSession
}

type mhAttempt struct {
	id     wire.PaymentID
	dest   cryptoutil.PublicKey
	amount chain.Amount
	count  int
	paths  [][]cryptoutil.PublicKey
	// fees, when non-nil, aligns with paths: the forwarding fee
	// schedule to attach when launching over the matching path.
	fees    [][]chain.Amount
	pathIdx int
	tries   int
	done    PayDone
	started sim.Time
}

// Node is the untrusted Teechain host: it owns the network endpoint,
// the blockchain client, the wallet, batching, retries, and reacts to
// enclave events. One node hosts one enclave.
type Node struct {
	ID      netsim.NodeID
	enclave *Enclave

	net   *netsim.Network
	ep    *netsim.Endpoint
	sim   *sim.Simulator
	chain *chain.Chain
	dir   *Directory
	cfg   NodeConfig
	rnd   *sim.Rand

	wallet *cryptoutil.KeyPair // host payout/wallet key (cold storage)

	// deposit bookkeeping outside the enclave
	depositScripts  map[chain.OutPoint]chain.Script
	pendingDeposits []pendingDeposit                  // wallet-funded, awaiting confirmations
	watched         map[chain.OutPoint]wire.PaymentID // τ inputs under watch
	// watchedDeposits tracks deposits associated with our channels so
	// counterparty settlements are detected on chain.
	watchedDeposits map[chain.OutPoint]wire.ChannelID

	// payment tracking
	chans map[wire.ChannelID]*chanRuntime
	mh    map[wire.PaymentID]*mhAttempt
	mhSeq uint64

	// peers caches routing and session state per attested identity.
	peers map[cryptoutil.PublicKey]*peerRoute
	// pools is the deployment-shared hot-path object pool (dir.pools).
	pools *hotPools
	// lastRoute/lastCr are one-entry lookup caches for the payment path
	// (see State.lastCh); neither map's entries are ever replaced.
	lastRoute *peerRoute
	lastTo    cryptoutil.PublicKey
	lastCr    *chanRuntime
	lastCrID  wire.ChannelID
	// costFn is the node's message cost model, resolved once.
	costFn func(payload any) (cpu, delay time.Duration)
	// freeBatches and freePending recycle payment batch records; the
	// node's deployment runs on one goroutine, so plain freelists work.
	freeBatches []*inflightBatch
	freePending []*pendingBatch

	// temporary channel setup and merge bookkeeping (§5.2)
	tempSetup     []tempSetup
	tempAssoc     []tempSetup
	pendingMerges []wire.ChannelID

	onEvent func(Event)

	// Metrics
	PaymentsSent     uint64
	PaymentsAcked    uint64
	PaymentsReceived uint64
	MultihopsOK      uint64
	MultihopsFailed  uint64
}

// NewNode creates a host plus its enclave, attaches it to the network,
// and registers it in the directory.
func NewNode(id netsim.NodeID, net *netsim.Network, bc *chain.Chain, dir *Directory, authority *tee.Authority, cfg NodeConfig) (*Node, error) {
	platform := tee.NewPlatform(authority, string(id))
	wallet, err := cryptoutil.GenerateKeyPair(cryptoutil.NewDeterministicReader([]byte("wallet"), []byte(id)))
	if err != nil {
		return nil, err
	}
	encCfg := cfg.Enclave
	encCfg.PayoutKey = wallet.Public()
	enclave, err := NewEnclave(platform, authority.PublicKey(), encCfg)
	if err != nil {
		return nil, err
	}
	if cfg.RetryMin == 0 {
		cfg.RetryMin = 100 * time.Millisecond
	}
	if cfg.RetryMax <= cfg.RetryMin {
		cfg.RetryMax = cfg.RetryMin + 100*time.Millisecond
	}
	n := &Node{
		ID:              id,
		enclave:         enclave,
		net:             net,
		sim:             net.Sim(),
		chain:           bc,
		dir:             dir,
		cfg:             cfg,
		rnd:             sim.NewRand(cfg.Seed ^ 0x7ee), // per-node stream
		wallet:          wallet,
		depositScripts:  make(map[chain.OutPoint]chain.Script),
		watched:         make(map[chain.OutPoint]wire.PaymentID),
		watchedDeposits: make(map[chain.OutPoint]wire.ChannelID),
		chans:           make(map[wire.ChannelID]*chanRuntime),
		mh:              make(map[wire.PaymentID]*mhAttempt),
		peers:           make(map[cryptoutil.PublicKey]*peerRoute),
		pools:           dir.pools,
		costFn:          CostModel(cfg.Enclave.StableStorage),
	}
	enclave.pools = dir.pools
	n.ep = net.AddNode(id, n.handleNetMessage, n.messageCost)
	dir.Register(enclave.Identity(), id)
	bc.OnBlock(n.onBlock)
	return n, nil
}

// chargeLocal runs fn after occupying the node's processor for cost,
// modelling enclave work triggered by local operator commands (e.g. the
// monotonic counter increment that guards every state change in
// stable-storage mode, §6.2).
func (n *Node) chargeLocal(cost time.Duration, fn func()) {
	n.ep.Processor().Do(cost, fn)
}

// Enclave exposes the node's enclave (the trusted component).
func (n *Node) Enclave() *Enclave { return n.enclave }

// Identity returns the enclave identity this node hosts.
func (n *Node) Identity() cryptoutil.PublicKey { return n.enclave.Identity() }

// WalletKey returns the host's cold payout key.
func (n *Node) WalletKey() cryptoutil.PublicKey { return n.wallet.Public() }

// OnEvent installs a user event callback (called after built-in
// handling).
func (n *Node) OnEvent(fn func(Event)) { n.onEvent = fn }

func (n *Node) messageCost(payload any) (time.Duration, time.Duration) {
	env, ok := payload.(*Envelope)
	if !ok {
		return CostPayBase, 0
	}
	return n.costFn(env.Msg)
}

// Dispatch sends an enclave result's outbound messages and surfaces its
// events. The Node convenience methods call it internally; it is
// exported for advanced flows that drive the enclave directly (e.g.
// committee failover, where a member settles a crashed owner's
// channels).
func (n *Node) Dispatch(res *Result) { n.dispatch(res) }

// dispatch sends an enclave result's outbound messages and surfaces its
// events. Pooled results recycle once consumed.
func (n *Node) dispatch(res *Result) {
	if res == nil {
		return
	}
	for i := range res.Out {
		n.send(res.Out[i])
	}
	if res.pay.kind != PayNone {
		n.handlePayEvent(res.pay)
	}
	for _, ev := range res.Events {
		n.handleEvent(ev)
	}
	n.pools.putResult(res)
}

// handlePayEvent is handleEvent for the unboxed payment events; the
// boxed form is built only when a user callback wants it.
func (n *Node) handlePayEvent(p payEvent) {
	switch p.kind {
	case PayAcked:
		n.completeBatch(p.channel, true, "")
	case PayNacked:
		n.completeBatch(p.channel, false, p.reason)
	case PayReceived:
		// metrics only; hookIncoming counted it
	}
	if n.onEvent != nil {
		n.onEvent(p.box())
	}
}

// route returns the cached peer route for an identity, resolving the
// directory and endpoint on first use.
func (n *Node) route(to cryptoutil.PublicKey) *peerRoute {
	if pr := n.lastRoute; pr != nil && n.lastTo == to {
		return pr
	}
	if pr, ok := n.peers[to]; ok {
		n.lastRoute, n.lastTo = pr, to
		return pr
	}
	node, ok := n.dir.NodeOf(to)
	if !ok {
		return nil
	}
	ep := n.net.Endpoint(node)
	if ep == nil {
		return nil
	}
	pr := &peerRoute{ep: ep}
	n.peers[to] = pr
	return pr
}

func (n *Node) send(out Outbound) {
	pr := n.route(out.To)
	if pr == nil {
		n.logf("no route to identity %s", out.To)
		return
	}
	env := n.pools.getEnvelope()
	env.From = n.enclave.Identity()
	env.Msg = out.Msg
	if _, isAttest := out.Msg.(*wire.Attest); !isAttest {
		sess := pr.sess
		if sess == nil {
			// Sessions are never replaced once established, so the
			// route may cache the transport for the peer's lifetime.
			sess = n.enclave.establishedSession(out.To)
			if sess == nil {
				n.logf("sealing token for %s: no established session", out.To)
				n.pools.putEnvelope(env)
				return
			}
			pr.sess = sess
		}
		env.Token = sess.transport.SealAppend(env.Token[:0], nil, nil)
	}
	if err := n.net.SendEp(n.ep, pr.ep, env, env.WireSize()); err != nil {
		// The message was never handed to the network, so the envelope
		// is still exclusively ours to recycle — a partition retry
		// storm stays allocation-free.
		n.logf("send to %s: %v", pr.ep.ID(), err)
		n.pools.putEnvelope(env)
	}
}

func (n *Node) handleNetMessage(from netsim.NodeID, payload any) {
	env, ok := payload.(*Envelope)
	if !ok {
		n.logf("dropping non-envelope payload %T", payload)
		return
	}
	if _, isAttest := env.Msg.(*wire.Attest); isAttest {
		// An inbound attest may replace the peer's session (outsourced
		// user re-attaching, §3); drop the cached transport so tokens
		// are sealed with whatever session the enclave ends up with.
		if pr, ok := n.peers[env.From]; ok {
			pr.sess = nil
		}
	}
	res, err := n.enclave.HandleSealed(env.From, env.Token, env.Msg)
	if err != nil {
		n.logf("dropping %T from %s: %v", env.Msg, from, err)
		n.pools.putEnvelope(env)
		return
	}
	n.hookIncoming(env.Msg)
	n.dispatch(res)
	n.pools.putEnvelope(env)
}

// hookIncoming updates host bookkeeping keyed off specific messages:
// payment metrics, and blockchain watches on τ inputs once τ is known
// (so premature settlements by other path members trigger PoPT
// ejection, §5.1).
func (n *Node) hookIncoming(msg wire.Message) {
	switch m := msg.(type) {
	case *wire.Pay:
		n.PaymentsReceived += uint64(m.Count)
	case *wire.MhLock:
		n.watchTau(m.Payment)
	case *wire.MhSign:
		n.watchTau(m.Payment)
	case *wire.MhPreUpdate:
		n.watchTau(m.Payment)
	}
}

// Logf, when set, receives host diagnostics (dropped messages, rejected
// settlements). The demo binaries and debugging tests install printers;
// production hosts would wire a real logger.
var Logf func(node netsim.NodeID, format string, args ...any)

func (n *Node) logf(format string, args ...any) {
	if Logf != nil {
		Logf(n.ID, format, args...)
	}
}

// --- Built-in event reactions ---

func (n *Node) handleEvent(ev Event) {
	switch e := ev.(type) {
	case EvChannelRequest:
		// Auto-accept inbound channels with our wallet as settlement
		// target.
		res, err := n.enclave.AcceptChannel(e.Channel, e.Remote, e.RemoteAddr, n.wallet.Address(), false)
		if err != nil {
			n.logf("accepting channel %s: %v", e.Channel, err)
			break
		}
		n.dispatch(res)
	case EvChannelOpen:
		// runtime state is created lazily on first payment
	case EvDepositApprovalNeeded:
		// Verify the deposit on the blockchain per local policy (§4.1).
		conf := n.chain.Confirmations(e.Deposit.Point.Tx)
		res, err := n.enclave.ConfirmRemoteDeposit(e.Remote, e.Deposit, conf)
		if err != nil {
			n.logf("deposit approval %s: %v", e.Deposit.Point, err)
			break
		}
		n.dispatch(res)
	case EvDepositAssociated:
		n.watchedDeposits[e.Point] = e.Channel
	case EvDepositDissociated:
		delete(n.watchedDeposits, e.Point)
	case EvPayAcked:
		n.completeBatch(e.Channel, true, "")
	case EvPayNacked:
		n.completeBatch(e.Channel, false, e.Reason)
	case EvPaymentReceived:
		// metrics only; hookIncoming counted it
	case EvMultihopComplete:
		n.finishMultihop(e)
	case EvMultihopArrived:
		n.PaymentsReceived += uint64(e.Count)
	case EvSettlementReady:
		if e.Tx != nil {
			n.completeAndSubmit(e.Tx, e.Needs)
		}
	case EvSigComplete:
		if _, err := n.chain.Submit(e.Tx); err != nil {
			n.logf("submitting completed settlement: %v", err)
		}
	case EvFrozen:
		// The host of a frozen chain settles everything it can.
		n.logf("chain %s frozen: %s", e.Chain, e.Reason)
	}
	if n.onEvent != nil {
		n.onEvent(ev)
	}
}

// completeAndSubmit drives committee signature collection for a
// settlement and submits when satisfied.
func (n *Node) completeAndSubmit(tx *chain.Transaction, needs []SigNeed) {
	if len(needs) == 0 {
		if _, err := n.chain.Submit(tx); err != nil {
			n.logf("submitting settlement: %v", err)
		}
		return
	}
	res, err := n.enclave.CollectSignatures(tx, n.enclave.DepsForTx(tx), needs)
	if err != nil {
		n.logf("collecting signatures: %v", err)
		return
	}
	n.dispatch(res)
}

// --- Setup operations ---

// Connect performs mutual attestation with a peer node and exchanges
// payout keys (identities are in the shared directory, i.e. exchanged
// out of band). Completion is asynchronous; run the simulator and check
// Connected.
func (n *Node) Connect(peer *Node) error {
	res, err := n.enclave.StartAttest(peer.Identity())
	if err != nil {
		return err
	}
	r1, err := n.enclave.RegisterPayoutKey(peer.WalletKey())
	if err != nil {
		return err
	}
	r2, err := peer.enclave.RegisterPayoutKey(n.WalletKey())
	if err != nil {
		return err
	}
	peer.dispatch(r2)
	n.dispatch(res.merge(r1))
	return nil
}

// Connected reports whether the secure channel with peer is up.
func (n *Node) Connected(peer *Node) bool {
	return n.enclave.SessionEstablished(peer.Identity())
}

// FormCommittee configures this node's committee chain (§6) with the
// given member nodes and threshold m (of len(members)+1).
func (n *Node) FormCommittee(members []*Node, m int) error {
	ids := make([]cryptoutil.PublicKey, len(members))
	for i, mem := range members {
		ids[i] = mem.Identity()
	}
	res, err := n.enclave.FormCommittee(ids, m)
	if err != nil {
		return err
	}
	n.dispatch(res)
	return nil
}

// CreateDepositInstant funds a deposit directly via the chain faucet
// and registers it immediately — the setup shortcut used by benchmarks
// (deposits are created "in advance", §4). CreateDeposit is the full
// asynchronous path.
func (n *Node) CreateDepositInstant(value chain.Amount) (chain.OutPoint, error) {
	script, err := n.enclave.NewDepositScript()
	if err != nil {
		return chain.OutPoint{}, err
	}
	point, err := n.chain.Fund(script, value)
	if err != nil {
		return chain.OutPoint{}, err
	}
	n.depositScripts[point] = script
	info := n.enclave.DepositInfoFor(point, value, script)
	res, err := n.enclave.RegisterDeposit(info)
	if err != nil {
		return chain.OutPoint{}, err
	}
	n.dispatch(res)
	return point, nil
}

// CreateDeposit funds a deposit from the host wallet with a real
// blockchain transaction and registers it once it has confirmations
// confirmations. The returned outpoint identifies the future deposit;
// registration happens asynchronously as blocks arrive.
func (n *Node) CreateDeposit(walletUTXO chain.OutPoint, value chain.Amount, confirmations uint64) (chain.OutPoint, error) {
	prev, ok := n.chain.UTXO(walletUTXO)
	if !ok {
		return chain.OutPoint{}, fmt.Errorf("core: wallet utxo %s unknown", walletUTXO)
	}
	if prev.Value < value {
		return chain.OutPoint{}, fmt.Errorf("core: wallet utxo %d below deposit value %d", prev.Value, value)
	}
	script, err := n.enclave.NewDepositScript()
	if err != nil {
		return chain.OutPoint{}, err
	}
	tx := &chain.Transaction{
		Inputs:  []chain.TxIn{{Prev: walletUTXO}},
		Outputs: []chain.TxOut{{Value: value, Script: script}},
	}
	if change := prev.Value - value; change > 0 {
		tx.Outputs = append(tx.Outputs, chain.TxOut{Value: change, Script: chain.PayToKey(n.wallet.Public())})
	}
	if err := tx.SignInput(0, prev.Script, n.wallet); err != nil {
		return chain.OutPoint{}, err
	}
	txid, err := n.chain.Submit(tx)
	if err != nil {
		return chain.OutPoint{}, err
	}
	point := chain.OutPoint{Tx: txid, Index: 0}
	n.depositScripts[point] = script
	// Register once buried deeply enough; the chain watcher below
	// triggers on each block.
	n.pendingDeposits = append(n.pendingDeposits, pendingDeposit{
		point: point, value: value, script: script, confirmations: confirmations,
	})
	return point, nil
}

type pendingDeposit struct {
	point         chain.OutPoint
	value         chain.Amount
	script        chain.Script
	confirmations uint64
}

// ApproveDeposit runs the approval handshake for one of our deposits
// with a channel peer.
func (n *Node) ApproveDeposit(peer *Node, point chain.OutPoint) error {
	res, err := n.enclave.RequestDepositApproval(peer.Identity(), point)
	if err != nil {
		return err
	}
	n.dispatch(res)
	return nil
}

// OpenChannel initiates a payment channel with peer and returns its ID.
func (n *Node) OpenChannel(peer *Node) (wire.ChannelID, error) {
	id := n.newChannelID(peer)
	res, err := n.enclave.OpenChannel(id, peer.Identity(), n.wallet.Address(), false)
	if err != nil {
		return "", err
	}
	n.dispatch(res)
	return id, nil
}

func (n *Node) newChannelID(peer *Node) wire.ChannelID {
	n.mhSeq++
	sum := cryptoutil.Hash256([]byte(n.ID), []byte(peer.ID), []byte(fmt.Sprint(n.mhSeq)))
	return wire.ChannelID(fmt.Sprintf("ch-%x", sum[:8]))
}

// AssociateDeposit binds an approved deposit to a channel.
func (n *Node) AssociateDeposit(channel wire.ChannelID, point chain.OutPoint) error {
	res, err := n.enclave.AssociateDeposit(channel, point)
	if err != nil {
		return err
	}
	n.dispatch(res)
	return nil
}

// DissociateDeposit removes a deposit from a channel.
func (n *Node) DissociateDeposit(channel wire.ChannelID, point chain.OutPoint) error {
	res, err := n.enclave.DissociateDeposit(channel, point)
	if err != nil {
		return err
	}
	n.dispatch(res)
	return nil
}

// --- Payments ---

// chanRt returns (creating on first use) the per-channel runtime
// record.
func (n *Node) chanRt(channel wire.ChannelID) *chanRuntime {
	if cr := n.lastCr; cr != nil && n.lastCrID == channel {
		return cr
	}
	cr := n.chans[channel]
	if cr == nil {
		cr = &chanRuntime{}
		n.chans[channel] = cr
	}
	n.lastCr, n.lastCrID = cr, channel
	return cr
}

func (n *Node) getBatch() *inflightBatch {
	if k := len(n.freeBatches); k > 0 {
		b := n.freeBatches[k-1]
		n.freeBatches = n.freeBatches[:k-1]
		return b
	}
	return &inflightBatch{}
}

func (n *Node) putBatch(b *inflightBatch) {
	for i := range b.entries {
		b.entries[i] = batchEntry{}
	}
	b.entries = b.entries[:0]
	b.count = 0
	n.freeBatches = append(n.freeBatches, b)
}

func (n *Node) failBatch(b *inflightBatch, reason string) {
	for i := range b.entries {
		if e := b.entries[i]; e.done != nil {
			e.done(false, 0, reason)
		}
	}
	n.putBatch(b)
}

// Pay sends amount over channel; done (optional) fires on remote
// acknowledgement. With batching enabled the payment may share a
// message with others in the same window.
func (n *Node) Pay(channel wire.ChannelID, amount chain.Amount, done PayDone) error {
	n.PaymentsSent++
	cr := n.chanRt(channel)
	if n.cfg.BatchWindow <= 0 {
		b := n.getBatch()
		b.count = 1
		b.entries = append(b.entries, batchEntry{done: done, issuedAt: n.sim.Now()})
		err := n.sendPay(channel, cr, amount, b)
		if err != nil {
			n.putBatch(b)
		}
		return err
	}
	pb := cr.batch
	if pb == nil {
		if k := len(n.freePending); k > 0 {
			pb = n.freePending[k-1]
			n.freePending = n.freePending[:k-1]
		} else {
			pb = &pendingBatch{}
		}
		cr.batch = pb
		pb.timer = n.sim.Schedule(n.cfg.BatchWindow, func() { n.flushBatch(channel) })
	}
	pb.amount += amount
	pb.count++
	pb.entries = append(pb.entries, batchEntry{done: done, issuedAt: n.sim.Now()})
	return nil
}

func (n *Node) flushBatch(channel wire.ChannelID) {
	cr := n.chanRt(channel)
	if cr.batch == nil {
		return
	}
	pb := cr.batch
	cr.batch = nil
	if pb.count > 0 {
		b := n.getBatch()
		b.count = pb.count
		// Hand the accumulated entries to the in-flight batch and take
		// its (cleared) backing array for the next window.
		b.entries, pb.entries = pb.entries, b.entries
		if err := n.sendPay(channel, cr, pb.amount, b); err != nil {
			n.failBatch(b, err.Error())
		}
	}
	pb.amount, pb.count, pb.timer = 0, 0, nil
	n.freePending = append(n.freePending, pb)
}

func (n *Node) sendPay(channel wire.ChannelID, cr *chanRuntime, amount chain.Amount, b *inflightBatch) error {
	if !n.cfg.Enclave.StableStorage {
		return n.doSendPay(channel, cr, amount, b)
	}
	// Stable storage seals state under a monotonic counter before the
	// payment leaves the enclave.
	n.chargeLocal(tee.CounterIncrementLatency, func() {
		if err := n.doSendPay(channel, cr, amount, b); err != nil {
			n.failBatch(b, err.Error())
		}
	})
	return nil
}

func (n *Node) doSendPay(channel wire.ChannelID, cr *chanRuntime, amount chain.Amount, b *inflightBatch) error {
	res, err := n.enclave.Pay(channel, amount, b.count)
	if err != nil {
		return err
	}
	b.sentAt = n.sim.Now()
	cr.inflight = append(cr.inflight, b)
	n.dispatch(res)
	return nil
}

// completeBatch resolves the oldest in-flight batch on a channel with
// the remote's verdict: acknowledgements and nacks arrive in issue
// order per channel (the enclave orders both behind replication).
func (n *Node) completeBatch(channel wire.ChannelID, ok bool, reason string) {
	cr := n.chanRt(channel)
	if cr.head >= len(cr.inflight) {
		return
	}
	b := cr.inflight[cr.head]
	cr.inflight[cr.head] = nil
	cr.head++
	if cr.head == len(cr.inflight) {
		cr.inflight = cr.inflight[:0]
		cr.head = 0
	} else if cr.head >= 32 && cr.head*2 >= len(cr.inflight) {
		// Compact once the dead prefix dominates, so a queue that
		// never fully drains (sustained windowed load) stays O(window)
		// rather than growing one slot per batch ever sent.
		live := copy(cr.inflight, cr.inflight[cr.head:])
		for i := live; i < len(cr.inflight); i++ {
			cr.inflight[i] = nil
		}
		cr.inflight = cr.inflight[:live]
		cr.head = 0
	}
	now := n.sim.Now()
	if ok {
		n.PaymentsAcked += uint64(b.count)
	}
	for i := range b.entries {
		if e := b.entries[i]; e.done != nil {
			e.done(ok, now.Sub(e.issuedAt), reason)
		}
	}
	n.putBatch(b)
}

// PayRetry is Pay with the §7.4 retry discipline: local failures and
// remote nacks (channel locked by a crossing multi-hop payment) retry
// after a randomized 100-200 ms backoff, up to the configured limit.
func (n *Node) PayRetry(channel wire.ChannelID, amount chain.Amount, done PayDone) {
	start := n.sim.Now()
	var attempt func(tries int)
	finish := func(ok bool, reason string) {
		if done != nil {
			done(ok, n.sim.Now().Sub(start), reason)
		}
	}
	attempt = func(tries int) {
		retry := func(reason string) {
			if tries >= n.cfg.MaxRetries {
				finish(false, reason)
				return
			}
			backoff := n.rnd.DurationBetween(n.cfg.RetryMin, n.cfg.RetryMax)
			n.sim.Schedule(backoff, func() { attempt(tries + 1) })
		}
		err := n.Pay(channel, amount, func(ok bool, _ time.Duration, reason string) {
			if ok {
				finish(true, "")
				return
			}
			retry(reason)
		})
		if err != nil {
			retry(err.Error())
		}
	}
	attempt(0)
}

// PayMultihop routes amount along one of the given identity paths
// (primary first); failures retry with randomized backoff, advancing to
// alternate paths round-robin (dynamic routing, §7.4).
func (n *Node) PayMultihop(paths [][]cryptoutil.PublicKey, amount chain.Amount, count int, done PayDone) error {
	return n.PayMultihopFees(paths, nil, amount, count, done)
}

// PayMultihopFees is PayMultihop with per-path forwarding fee
// schedules: fees, when non-nil, aligns with paths and each schedule
// aligns with its path (route.Route supplies both halves).
func (n *Node) PayMultihopFees(paths [][]cryptoutil.PublicKey, fees [][]chain.Amount, amount chain.Amount, count int, done PayDone) error {
	if len(paths) == 0 {
		return errors.New("core: no paths supplied")
	}
	if fees != nil && len(fees) != len(paths) {
		return fmt.Errorf("core: %d fee schedules for %d paths", len(fees), len(paths))
	}
	n.mhSeq++
	att := &mhAttempt{
		dest:    paths[0][len(paths[0])-1],
		amount:  amount,
		count:   count,
		paths:   paths,
		fees:    fees,
		done:    done,
		started: n.sim.Now(),
	}
	n.PaymentsSent += uint64(count)
	return n.launchMultihop(att)
}

func (n *Node) launchMultihop(att *mhAttempt) error {
	n.mhSeq++
	att.id = wire.PaymentID(fmt.Sprintf("mh-%s-%d", n.ID, n.mhSeq))
	path := att.paths[att.pathIdx%len(att.paths)]
	var fees []chain.Amount
	if att.fees != nil {
		fees = att.fees[att.pathIdx%len(att.fees)]
	}
	res, err := n.enclave.PayMultihopFees(att.id, att.amount, att.count, path, fees)
	if err != nil {
		// Local failure (e.g. our own channel is busy): retry like a
		// remote failure.
		n.mh[att.id] = att
		n.retryMultihop(att, err.Error())
		return nil
	}
	n.mh[att.id] = att
	n.watchTau(att.id)
	n.dispatch(res)
	return nil
}

func (n *Node) finishMultihop(e EvMultihopComplete) {
	att, ok := n.mh[e.Payment]
	if !ok {
		return
	}
	if e.OK {
		delete(n.mh, e.Payment)
		n.unwatch(e.Payment)
		n.MultihopsOK++
		n.PaymentsAcked += uint64(att.count)
		if att.done != nil {
			att.done(true, n.sim.Now().Sub(att.started), "")
		}
		return
	}
	n.retryMultihop(att, e.Reason)
}

func (n *Node) retryMultihop(att *mhAttempt, reason string) {
	delete(n.mh, att.id)
	att.tries++
	if att.tries > n.cfg.MaxRetries {
		n.MultihopsFailed++
		if att.done != nil {
			att.done(false, n.sim.Now().Sub(att.started), reason)
		}
		return
	}
	att.pathIdx++ // rotate paths when alternates exist
	backoff := n.rnd.DurationBetween(n.cfg.RetryMin, n.cfg.RetryMax)
	n.sim.Schedule(backoff, func() {
		if err := n.launchMultihop(att); err != nil {
			n.MultihopsFailed++
			if att.done != nil {
				att.done(false, n.sim.Now().Sub(att.started), err.Error())
			}
		}
	})
}

// watchTau registers the τ inputs of an in-flight payment for
// blockchain watching so premature settlements by other participants
// are detected and answered with PoPT ejection.
func (n *Node) watchTau(pid wire.PaymentID) {
	mh, ok := n.enclave.State().Multihop[pid]
	if !ok || mh.Tau == nil {
		return
	}
	for _, in := range mh.Tau.Inputs {
		n.watched[in.Prev] = pid
	}
}

// --- Settlement ---

// Settle terminates a channel; off-chain when neutral, otherwise the
// settlement transaction is completed and submitted automatically.
func (n *Node) Settle(channel wire.ChannelID) (*SettleResult, error) {
	sr, err := n.enclave.Settle(channel)
	if err != nil {
		return nil, err
	}
	n.dispatch(sr.Result)
	return sr, nil
}

// EjectPayment prematurely terminates a multi-hop payment and submits
// the resulting settlements.
func (n *Node) EjectPayment(pid wire.PaymentID) (*SettleResult, error) {
	sr, err := n.enclave.EjectPayment(pid)
	if err != nil {
		return nil, err
	}
	n.dispatch(sr.Result)
	for i, tx := range sr.Txs {
		n.completeAndSubmit(tx, sr.Needs[i])
	}
	return sr, nil
}

// ReleaseDeposit spends a free deposit back to the wallet.
func (n *Node) ReleaseDeposit(point chain.OutPoint) error {
	tx, needs, res, err := n.enclave.ReleaseDeposit(point)
	if err != nil {
		return err
	}
	n.dispatch(res)
	n.completeAndSubmit(tx, needs)
	return nil
}

// onBlock reacts to new blocks: registers matured deposits and detects
// spends of watched τ inputs (PoPT trigger).
func (n *Node) onBlock(b *chain.Block) {
	// Mature wallet-funded deposits.
	if len(n.pendingDeposits) > 0 {
		var keep []pendingDeposit
		for _, pd := range n.pendingDeposits {
			if n.chain.Confirmations(pd.point.Tx) >= pd.confirmations {
				info := n.enclave.DepositInfoFor(pd.point, pd.value, pd.script)
				if res, err := n.enclave.RegisterDeposit(info); err == nil {
					n.dispatch(res)
				} else {
					n.logf("registering matured deposit: %v", err)
				}
				continue
			}
			keep = append(keep, pd)
		}
		n.pendingDeposits = keep
	}
	// Detect premature settlements of in-flight multi-hop payments and
	// counterparty settlements of our channels.
	for _, tx := range b.Txs {
		for _, in := range tx.Inputs {
			if pid, ok := n.watched[in.Prev]; ok {
				delete(n.watched, in.Prev)
				n.reactToSpend(pid, in.Prev, tx)
				continue
			}
			if chID, ok := n.watchedDeposits[in.Prev]; ok {
				delete(n.watchedDeposits, in.Prev)
				n.reactToChannelSpend(chID, in.Prev, tx)
			}
		}
	}
}

// reactToChannelSpend handles an on-chain spend of one of our channel
// deposits: the counterparty (or a τ) settled the channel. The enclave
// closes the channel; if a multi-hop payment was in flight over it, the
// remaining channels eject consistently.
func (n *Node) reactToChannelSpend(chID wire.ChannelID, point chain.OutPoint, tx *chain.Transaction) {
	var pid wire.PaymentID
	if c, ok := n.enclave.State().Channels[chID]; ok {
		pid = c.Payment
	}
	if res, err := n.enclave.ObserveSpent(point, tx); err == nil {
		n.dispatch(res)
	}
	if pid == "" {
		return
	}
	if mh, ok := n.enclave.State().Multihop[pid]; !ok || mh.Done {
		return
	}
	sr, err := n.enclave.EjectWithPoPT(pid, tx)
	if err != nil {
		sr, err = n.enclave.EjectPayment(pid)
		if err != nil {
			return
		}
	}
	n.dispatch(sr.Result)
	for i, stx := range sr.Txs {
		n.completeAndSubmit(stx, sr.Needs[i])
	}
}

func (n *Node) reactToSpend(pid wire.PaymentID, point chain.OutPoint, tx *chain.Transaction) {
	// Our own channel's deposit: the enclave observes and closes.
	if res, err := n.enclave.ObserveSpent(point, tx); err == nil {
		n.dispatch(res)
	}
	mh, ok := n.enclave.State().Multihop[pid]
	if !ok || mh.Done {
		return
	}
	// A foreign channel of an in-flight payment settled prematurely:
	// eject with the observed transaction as PoPT. When the PoPT rules
	// do not apply (our channel was the one settled, or we are still in
	// a stage permitting individual settlement), fall back to voluntary
	// ejection so our remaining channels settle too.
	sr, err := n.enclave.EjectWithPoPT(pid, tx)
	if err != nil {
		sr, err = n.enclave.EjectPayment(pid)
		if err != nil {
			return
		}
	}
	n.dispatch(sr.Result)
	for i, stx := range sr.Txs {
		n.completeAndSubmit(stx, sr.Needs[i])
	}
}

// unwatch clears blockchain watches for a finished payment.
func (n *Node) unwatch(pid wire.PaymentID) {
	for p, id := range n.watched {
		if id == pid {
			delete(n.watched, p)
		}
	}
}
