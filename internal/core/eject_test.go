package core

import (
	"fmt"
	"testing"
	"time"

	"teechain/internal/chain"
	"teechain/internal/cryptoutil"
	"teechain/internal/wire"
)

// multihopWorld sets up a three-node path with 1000 in each channel and
// returns the world plus nodes.
func multihopWorld(t *testing.T) (*world, []*Node, []wire.ChannelID) {
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	c := w.node("carol", NodeConfig{})
	ids := w.pipeline(1000, a, b, c)
	return w, []*Node{a, b, c}, ids
}

// runUntilStage advances the simulator until some channel of node n
// reaches the given multi-hop stage.
func runUntilStage(w *world, n *Node, stage MhStage) wire.PaymentID {
	w.t.Helper()
	var pid wire.PaymentID
	w.until(func() bool {
		for _, c := range n.Enclave().State().Channels {
			if c.Stage == stage && c.Payment != "" {
				pid = c.Payment
				return true
			}
		}
		return false
	})
	return pid
}

// onChainTotal sums the chain balances of all given wallets.
func onChainTotal(w *world, nodes []*Node) chain.Amount {
	var total chain.Amount
	for _, n := range nodes {
		total += w.chain.BalanceByAddress(n.wallet.Address())
	}
	return total
}

// wealth is a party's total recoverable value: confirmed on-chain funds
// plus the perceived balance still recoverable from open channels and
// free deposits.
func wealth(w *world, n *Node) chain.Amount {
	return w.chain.BalanceByAddress(n.wallet.Address()) + n.Enclave().State().PerceivedBalance()
}

// assertConsistentTermination checks that, after ejection settles, each
// party's wealth matches either the all-pre-payment or the
// all-post-payment outcome — never a mix (balance correctness under
// premature termination, §5.1 and Appendix A.5) — and that no value was
// created or destroyed.
func assertConsistentTermination(t *testing.T, w *world, nodes []*Node, amount chain.Amount) {
	t.Helper()
	w.run()
	// Let the watchers react and everything settle: mine a few rounds,
	// draining the simulator in between so PoPT ejections land.
	for i := 0; i < 6; i++ {
		w.chain.MineBlock()
		w.run()
	}
	got := [3]chain.Amount{wealth(w, nodes[0]), wealth(w, nodes[1]), wealth(w, nodes[2])}
	pre := [3]chain.Amount{1000, 1000, 0}
	post := [3]chain.Amount{1000 - amount, 1000, amount}
	if got != pre && got != post {
		t.Fatalf("inconsistent termination: wealth %v, want %v (pre) or %v (post)", got, pre, post)
	}
	if total := got[0] + got[1] + got[2]; total != 2000 {
		t.Fatalf("value not conserved: total %d, want 2000", total)
	}
}

func TestEjectDuringLockSettlesPrePayment(t *testing.T) {
	w, nodes, _ := multihopWorld(t)
	a, b, c := nodes[0], nodes[1], nodes[2]
	_ = c
	if err := a.PayMultihop([][]cryptoutil.PublicKey{identityPath(a, b, c)}, 200, 1, nil); err != nil {
		t.Fatal(err)
	}
	pid := runUntilStage(w, b, MhLock)
	if _, err := b.EjectPayment(pid); err != nil {
		t.Fatalf("EjectPayment: %v", err)
	}
	assertConsistentTermination(t, w, nodes, 200)
	// Lock-stage ejection must always land pre-payment.
	if got := w.chain.BalanceByAddress(c.wallet.Address()); got != 0 {
		t.Fatalf("carol received %d from a lock-stage ejection", got)
	}
}

func TestEjectDuringSignAtRecipient(t *testing.T) {
	w, nodes, _ := multihopWorld(t)
	a, b, c := nodes[0], nodes[1], nodes[2]
	if err := a.PayMultihop([][]cryptoutil.PublicKey{identityPath(a, b, c)}, 200, 1, nil); err != nil {
		t.Fatal(err)
	}
	pid := runUntilStage(w, c, MhSign)
	if _, err := c.EjectPayment(pid); err != nil {
		t.Fatalf("EjectPayment: %v", err)
	}
	assertConsistentTermination(t, w, nodes, 200)
}

func TestEjectDuringPreUpdateSettlesViaTau(t *testing.T) {
	w, nodes, _ := multihopWorld(t)
	a, b, c := nodes[0], nodes[1], nodes[2]
	if err := a.PayMultihop([][]cryptoutil.PublicKey{identityPath(a, b, c)}, 200, 1, nil); err != nil {
		t.Fatal(err)
	}
	pid := runUntilStage(w, b, MhPreUpdate)
	sr, err := b.EjectPayment(pid)
	if err != nil {
		t.Fatalf("EjectPayment: %v", err)
	}
	if len(sr.Txs) != 1 {
		t.Fatalf("preUpdate ejection returned %d txs, want 1 (τ)", len(sr.Txs))
	}
	// τ settles every channel in the path at post-payment state.
	assertConsistentTermination(t, w, nodes, 200)
	if got := w.chain.BalanceByAddress(c.wallet.Address()); got != 200 {
		t.Fatalf("carol has %d after τ settlement, want 200", got)
	}
}

func TestEjectDuringPostUpdateSettlesPostPayment(t *testing.T) {
	w, nodes, _ := multihopWorld(t)
	a, b, c := nodes[0], nodes[1], nodes[2]
	if err := a.PayMultihop([][]cryptoutil.PublicKey{identityPath(a, b, c)}, 200, 1, nil); err != nil {
		t.Fatal(err)
	}
	pid := runUntilStage(w, b, MhPostUpdate)
	if _, err := b.EjectPayment(pid); err != nil {
		t.Fatalf("EjectPayment: %v", err)
	}
	assertConsistentTermination(t, w, nodes, 200)
	if got := w.chain.BalanceByAddress(c.wallet.Address()); got != 200 {
		t.Fatalf("carol has %d after post-payment ejection, want 200", got)
	}
}

func TestEjectEveryNodeEveryStageIsConsistent(t *testing.T) {
	// Exhaustive sweep: every (node, stage) premature termination must
	// produce a consistent all-pre or all-post outcome.
	stages := []MhStage{MhLock, MhSign, MhPreUpdate, MhUpdate, MhPostUpdate}
	for _, stage := range stages {
		for who := 0; who < 3; who++ {
			name := fmt.Sprintf("%v/node%d", stage, who)
			t.Run(name, func(t *testing.T) {
				w, nodes, _ := multihopWorld(t)
				a, b, c := nodes[0], nodes[1], nodes[2]
				if err := a.PayMultihop([][]cryptoutil.PublicKey{identityPath(a, b, c)}, 200, 1, nil); err != nil {
					t.Fatal(err)
				}
				ejector := nodes[who]
				var pid wire.PaymentID
				reached := true
				func() {
					defer func() {
						if r := recover(); r != nil {
							reached = false
						}
					}()
					// Not every node passes through every stage on both
					// channels; skip unreachable combinations.
					done := false
					for i := 0; i < 1_000_000 && !done; i++ {
						for _, ch := range ejector.Enclave().State().Channels {
							if ch.Stage == stage && ch.Payment != "" {
								pid = ch.Payment
								done = true
								break
							}
						}
						if !done && !w.sim.Step() {
							reached = false
							return
						}
					}
				}()
				if !reached {
					t.Skipf("node %d never observes stage %v", who, stage)
				}
				if _, err := ejector.EjectPayment(pid); err != nil {
					t.Fatalf("EjectPayment at %v: %v", stage, err)
				}
				assertConsistentTermination(t, w, nodes, 200)
			})
		}
	}
}

func TestPoPTClassification(t *testing.T) {
	w, nodes, _ := multihopWorld(t)
	a, b, c := nodes[0], nodes[1], nodes[2]
	if err := a.PayMultihop([][]cryptoutil.PublicKey{identityPath(a, b, c)}, 200, 1, nil); err != nil {
		t.Fatal(err)
	}
	pid := runUntilStage(w, b, MhPreUpdate)
	mh := b.Enclave().State().Multihop[pid]
	if mh.Tau == nil {
		t.Fatal("no τ at preUpdate")
	}
	// τ itself is not a PoPT.
	if _, err := classifyPoPT(mh.Tau, mh.Tau); err == nil {
		t.Fatal("τ classified as a PoPT against itself")
	}
	// An unrelated transaction is not a PoPT.
	other := &chain.Transaction{
		Inputs:  []chain.TxIn{{Prev: chain.OutPoint{Tx: chain.TxID{9}}}},
		Outputs: []chain.TxOut{{Value: 1, Script: chain.PayToKey(a.WalletKey())}},
	}
	if _, err := classifyPoPT(mh.Tau, other); err == nil {
		t.Fatal("unrelated transaction accepted as PoPT")
	}
}

func TestAbortUnlocksChannels(t *testing.T) {
	// Exhaust bob->carol capacity so the payment aborts at bob, then
	// verify alice's channel unlocks and a smaller payment succeeds.
	w, nodes, ids := multihopWorld(t)
	a, b, c := nodes[0], nodes[1], nodes[2]
	_ = ids
	failed := false
	if err := a.PayMultihop([][]cryptoutil.PublicKey{identityPath(a, b, c)}, 5000, 1,
		func(ok bool, _ time.Duration, reason string) {
			if ok {
				t.Fatal("oversized payment succeeded")
			}
			failed = true
		}); err != nil {
		t.Fatal(err)
	}
	w.run()
	if !failed {
		t.Fatal("no failure reported")
	}
	for _, ch := range a.Enclave().State().Channels {
		if ch.Stage != MhIdle {
			t.Fatalf("alice channel stuck in %v after abort", ch.Stage)
		}
	}
	ok := false
	if err := a.PayMultihop([][]cryptoutil.PublicKey{identityPath(a, b, c)}, 100, 1,
		func(o bool, _ time.Duration, _ string) { ok = o }); err != nil {
		t.Fatal(err)
	}
	w.run()
	if !ok {
		t.Fatal("payment after abort failed")
	}
}

func TestReplayedEnvelopeDropped(t *testing.T) {
	// Capture a payment envelope and replay it: the session counter
	// must reject the duplicate, leaving balances unchanged.
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	w.connect(a, b)
	id := w.openChannel(a, b)
	w.fundAndAssociate(a, b, id, 1000)

	if err := a.Pay(id, 100, nil); err != nil {
		t.Fatal(err)
	}
	w.run()
	myB, _ := channelBal(t, b, id)
	if myB != 100 {
		t.Fatalf("bob balance %d, want 100", myB)
	}

	// Forge a replay: reuse a stale token by sealing one, delivering it
	// twice.
	token, err := a.Enclave().SealToken(b.Identity())
	if err != nil {
		t.Fatal(err)
	}
	env := &Envelope{From: a.Identity(), Msg: &wire.Pay{Channel: id, Amount: 100, Count: 1}, Token: token}
	if err := w.net.Send(a.ID, b.ID, env, env.WireSize()); err != nil {
		t.Fatal(err)
	}
	if err := w.net.Send(a.ID, b.ID, env, env.WireSize()); err != nil {
		t.Fatal(err)
	}
	w.run()
	myB, _ = channelBal(t, b, id)
	if myB != 200 {
		t.Fatalf("bob balance %d after replay, want 200 (one accepted, one dropped)", myB)
	}
}

func TestForgedSenderRejected(t *testing.T) {
	// Mallory (no session) injects a payment claiming to be alice.
	w := newWorld(t)
	a := w.node("alice", NodeConfig{})
	b := w.node("bob", NodeConfig{})
	m := w.node("mallory", NodeConfig{})
	w.connect(a, b)
	id := w.openChannel(a, b)
	w.fundAndAssociate(a, b, id, 1000)

	env := &Envelope{From: a.Identity(), Msg: &wire.Pay{Channel: id, Amount: 500, Count: 1}, Token: []byte("garbage")}
	if err := w.net.Send(m.ID, b.ID, env, env.WireSize()); err != nil {
		t.Fatal(err)
	}
	w.run()
	myB, _ := channelBal(t, b, id)
	if myB != 0 {
		t.Fatalf("forged payment credited %d", myB)
	}
}
