package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync/atomic"

	"teechain/internal/chain"
	"teechain/internal/cryptoutil"
	"teechain/internal/route"
	"teechain/internal/tee"
	"teechain/internal/wire"
)

// ProgramName identifies the Teechain enclave program; all honest
// enclaves share its measurement.
const ProgramName = "teechain-enclave-v1"

// Config carries an enclave's local security policy.
type Config struct {
	// MinConfirmations is how deep a deposit must be buried before this
	// enclave approves it for a shared channel (§4.1 deposit approval).
	MinConfirmations uint64
	// StableStorage enables the crash-fault persistence mode of §6.2:
	// every state change is sealed under a monotonic counter.
	StableStorage bool
	// AllowOutsource permits one TEE-less user to attach and drive this
	// enclave remotely (§3).
	AllowOutsource bool
	// PayoutKey is the owner's cold settlement key; deposit releases pay
	// its address and committee members refuse any other destination.
	PayoutKey cryptoutil.PublicKey
}

// peerSession is the secure-channel state for one attested remote
// enclave (netaes of Alg. 1).
type peerSession struct {
	remote      cryptoutil.PublicKey
	dh          *cryptoutil.DHKeyPair
	key         [32]byte
	transport   *cryptoutil.Session
	established bool
}

// replPrimary is the head-of-chain view of this enclave's own
// replication chain / committee.
type replPrimary struct {
	chainID string
	// members in chain order; members[0] is this enclave.
	members []cryptoutil.PublicKey
	m       int // signature threshold for deposits
	// btcKeys[i] is member i's committee blockchain key (index 0 unused;
	// the owner uses fresh per-deposit keys).
	memberBtcKeys map[cryptoutil.PublicKey]cryptoutil.PublicKey
	ready         bool

	// resyncPending counts committee members yet to acknowledge a
	// post-recovery mirror resync (ReplResyncStart); EvReplResynced
	// fires when it reaches zero. resyncSeq is the log sequence the
	// resync snapshot covers: once every member adopted it, everything
	// up to it is replicated by definition, so the ack cursor may jump
	// there (releasing a stalled window's withheld effects — the
	// watchdog self-heal path).
	resyncPending int
	resyncSeq     uint64

	// log is the replication pipeline: sequence assignment, the window
	// of committed-but-unacknowledged entries with their withheld
	// effects, and the pipelined-delivery queue. Its own lock domain —
	// see repl.go. A pointer so a durable enclave's pre-existing WAL log
	// can be adopted wholesale on committee formation, keeping one
	// sequence space for both cursors.
	log *replLog
}

func (p *replPrimary) backup() (cryptoutil.PublicKey, bool) {
	if len(p.members) < 2 {
		return cryptoutil.PublicKey{}, false
	}
	return p.members[1], true
}

// replBackup is this enclave's view of a chain it serves as a committee
// member / backup for.
type replBackup struct {
	chainID string
	members []cryptoutil.PublicKey
	m       int
	myIndex int
	mirror  *State
	// btcKey is this member's committee blockchain key.
	btcKey  *cryptoutil.KeyPair
	lastSeq uint64
	frozen  bool
	// pendingSigs caches this member's (and, at middles, downstream
	// members') τ signatures per update sequence: merged into the
	// upstream ack, and re-served when a Retx duplicate repairs a lost
	// ack. Pruned by rememberSigs once sequences leave the verifiable
	// window.
	pendingSigs map[uint64][]wire.TauSig
	// scratchOp is the reused decode target for ReplBatch application:
	// batched ops never retain struct internals, so one op per backup
	// keeps batch application allocation-free.
	scratchOp Op

	// Self-healing state (repl_heal.go): the bounded reorder buffer for
	// ahead-of-sequence frames, the rolling digest ring verifying that
	// retransmissions match what was applied (digBase = last sequence
	// covered by the attach/resync snapshot, unverifiable), and NACK
	// suppression.
	held         []replHeld
	digests      []uint64
	digBase      uint64
	lastNackWant uint64
	nackHeld     int
}

func (b *replBackup) prev() cryptoutil.PublicKey { return b.members[b.myIndex-1] }

func (b *replBackup) next() (cryptoutil.PublicKey, bool) {
	if b.myIndex+1 < len(b.members) {
		return b.members[b.myIndex+1], true
	}
	return cryptoutil.PublicKey{}, false
}

// Enclave is the trusted Teechain program: a message-driven state
// machine hosted by an untrusted Node. All methods are entry points
// crossing the (simulated) enclave boundary.
type Enclave struct {
	platform    *tee.Platform
	measurement tee.Measurement
	authority   cryptoutil.PublicKey
	identity    *cryptoutil.KeyPair
	cfg         Config

	sessions map[cryptoutil.PublicKey]*peerSession
	state    *State
	// btcKeys holds blockchain private keys this enclave can sign with:
	// its own deposit keys plus 1-of-1 keys shared by channel
	// counterparties (btcPrivs of Alg. 1).
	btcKeys map[cryptoutil.Address]*cryptoutil.KeyPair
	// sigCollections tracks in-progress committee signature gathering,
	// keyed by settlement transaction ID.
	sigCollections map[chain.TxID]*sigCollection

	repl    *replPrimary
	backups map[string]*replBackup

	// wal, when non-nil, is the durable write-ahead-log state: the log
	// whose syncSeq cursor gates effect releases plus the snapshot
	// bookkeeping. See durable.go.
	wal *walState

	// pools recycles hot-path objects; NewNode points it at the
	// deployment-wide instance shared through the Directory.
	pools *hotPools

	// lastSess is a one-entry session lookup cache (see State.lastCh
	// for the rationale). An established session is replaced only by a
	// resume attestation from a recovered peer (handleAttest), which
	// invalidates the cache. Atomic for the same reason as
	// State.lastCh: concurrent payment lanes of a socket host share it.
	lastSess atomic.Pointer[peerSession]

	// replPipelined/replNotify record an EnableReplPipeline call made
	// before committee formation; FormCommittee copies them into the
	// chain's log.
	replPipelined bool
	replNotify    func()

	// Outsourcing (§3): the provisioned TEE-less user and the pending
	// command sequence numbers per channel awaiting acknowledgements.
	outsourceUser    cryptoutil.PublicKey
	outsourcePending map[wire.ChannelID][]uint64

	// feePolicy is the forwarding fee this enclave charges per
	// multi-hop payment it relays (zero by default). Locks whose fee
	// schedule undercuts it are refused with a Transient abort, so the
	// announced policy is enclave-enforced, not just advisory gossip.
	feePolicy route.FeePolicy

	counterName string
	keySeq      uint64
}

// SetFeePolicy installs the forwarding fee policy. Call it before the
// enclave starts relaying (the host sets it from its config at boot).
func (e *Enclave) SetFeePolicy(p route.FeePolicy) error {
	if !p.Valid() {
		return fmt.Errorf("core: invalid fee policy %+v", p)
	}
	e.feePolicy = p
	return nil
}

// FeePolicy returns the forwarding fee policy this enclave enforces.
func (e *Enclave) FeePolicy() route.FeePolicy { return e.feePolicy }

// NewEnclave launches the Teechain program on a platform.
func NewEnclave(platform *tee.Platform, authority cryptoutil.PublicKey, cfg Config) (*Enclave, error) {
	identity, err := cryptoutil.GenerateKeyPair(platform.Rand())
	if err != nil {
		return nil, fmt.Errorf("core: generating enclave identity: %w", err)
	}
	e := &Enclave{
		platform:         platform,
		measurement:      tee.MeasurementOf(ProgramName),
		authority:        authority,
		identity:         identity,
		cfg:              cfg,
		sessions:         make(map[cryptoutil.PublicKey]*peerSession),
		state:            NewState(identity.Public()),
		btcKeys:          make(map[cryptoutil.Address]*cryptoutil.KeyPair),
		sigCollections:   make(map[chain.TxID]*sigCollection),
		backups:          make(map[string]*replBackup),
		outsourcePending: make(map[wire.ChannelID][]uint64),
		pools:            newHotPools(),
		counterName:      "teechain-state",
	}
	e.state.OwnerPayout = cfg.PayoutKey.Address()
	if !cfg.PayoutKey.IsZero() {
		e.state.PayoutKeys[cfg.PayoutKey.Address()] = cfg.PayoutKey
	}
	return e, nil
}

// Identity returns the enclave's public identity key (K_me).
func (e *Enclave) Identity() cryptoutil.PublicKey { return e.identity.Public() }

// State exposes the enclave's logical state for inspection by its own
// host (a local, trusted read in the simulation; a real deployment
// would expose specific queries).
func (e *Enclave) State() *State { return e.state }

// ChainID returns this enclave's replication chain identifier.
func (e *Enclave) ChainID() string { return chainIDOf(e.identity.Public()) }

func chainIDOf(owner cryptoutil.PublicKey) string {
	sum := cryptoutil.Hash256([]byte("teechain/chain-id"), owner[:])
	return fmt.Sprintf("cc-%x", sum[:8])
}

// --- Attestation and session establishment (Alg. 1 newNetworkChannel) ---

func reportDataFor(identity cryptoutil.PublicKey, dhPub []byte) [32]byte {
	return cryptoutil.Hash256([]byte("teechain/report"), identity[:], dhPub)
}

// StartAttest begins mutual remote attestation with a peer enclave
// whose identity key was exchanged out of band.
func (e *Enclave) StartAttest(peer cryptoutil.PublicKey) (*Result, error) {
	return e.startAttest(peer, false)
}

// StartAttestResume is StartAttest for a crash-recovered enclave
// re-establishing a session it held before the crash: the Resume flag
// tells the peer to replace its (now stale) established session instead
// of rejecting the handshake as a duplicate.
func (e *Enclave) StartAttestResume(peer cryptoutil.PublicKey) (*Result, error) {
	return e.startAttest(peer, true)
}

func (e *Enclave) startAttest(peer cryptoutil.PublicKey, resume bool) (*Result, error) {
	if e.state.Frozen {
		return nil, ErrFrozen
	}
	if s, ok := e.sessions[peer]; ok && s.established {
		return nil, fmt.Errorf("core: session with %s already established", peer)
	}
	dh, err := cryptoutil.GenerateDHKeyPair(e.platform.Rand())
	if err != nil {
		return nil, err
	}
	e.sessions[peer] = &peerSession{remote: peer, dh: dh}
	quote, err := e.platform.Quote(e.measurement, reportDataFor(e.identity.Public(), dh.PublicBytes()))
	if err != nil {
		return nil, err
	}
	return &Result{Out: oneOut(peer, &wire.Attest{
		Quote:    quote,
		Identity: e.identity.Public(),
		DHPublic: dh.PublicBytes(),
		Resume:   resume,
	})}, nil
}

func (e *Enclave) handleAttest(from cryptoutil.PublicKey, m *wire.Attest) (*Result, error) {
	if m.Identity != from {
		return nil, errors.New("core: attest identity does not match sender")
	}
	if err := tee.VerifyQuote(e.authority, m.Quote, e.measurement); err != nil {
		return nil, fmt.Errorf("core: peer attestation failed: %w", err)
	}
	if m.Quote.ReportData != reportDataFor(m.Identity, m.DHPublic) {
		return nil, errors.New("core: attest report data does not bind identity and DH key")
	}

	if m.Response {
		s, ok := e.sessions[from]
		if !ok || s.established {
			return nil, errors.New("core: unexpected attest response")
		}
		if err := e.finishSession(s, m.DHPublic); err != nil {
			return nil, err
		}
		return &Result{}, nil
	}

	// Fresh inbound handshake; reject duplicates (Alg. 1 line 16) —
	// unless the peer attests that it crash-recovered and is resuming,
	// in which case the existing session is stale (its keys died with
	// the peer's old enclave) and is replaced. The attestation quote
	// just verified above is what authorizes the replacement: only a
	// genuine Teechain enclave holding the peer's identity key can
	// produce it. A replayed Resume frame can at worst wedge one
	// session until the next re-attestation; it cannot leak or forge
	// state.
	if s, ok := e.sessions[from]; ok && s.established {
		if !m.Resume {
			return nil, fmt.Errorf("core: session with %s already established", from)
		}
		if cached := e.lastSess.Load(); cached != nil && cached.remote == from {
			e.lastSess.Store(nil)
		}
		// Freeze outgoing payments on this peer's channels until the
		// recovered peer's ChanResume reconciles them: a payment issued
		// in between would be counted into the peer's send excess and
		// wrongly reverted (see ChannelState.Resuming).
		for _, c := range e.state.Channels {
			if c.Remote == from && c.Open && !c.Closed {
				c.Resuming = true
			}
		}
	}
	dh, err := cryptoutil.GenerateDHKeyPair(e.platform.Rand())
	if err != nil {
		return nil, err
	}
	s := &peerSession{remote: from, dh: dh}
	e.sessions[from] = s
	if err := e.finishSession(s, m.DHPublic); err != nil {
		return nil, err
	}
	quote, err := e.platform.Quote(e.measurement, reportDataFor(e.identity.Public(), dh.PublicBytes()))
	if err != nil {
		return nil, err
	}
	return &Result{Out: oneOut(from, &wire.Attest{
		Quote:    quote,
		Identity: e.identity.Public(),
		DHPublic: dh.PublicBytes(),
		Response: true,
	})}, nil
}

func (e *Enclave) finishSession(s *peerSession, peerDH []byte) error {
	key, err := s.dh.SharedKey(peerDH, e.identity.Public(), s.remote)
	if err != nil {
		return err
	}
	transport, err := cryptoutil.NewSession(key)
	if err != nil {
		return err
	}
	s.key = key
	s.transport = transport
	s.established = true
	return nil
}

// SessionEstablished reports whether a secure channel to peer exists.
func (e *Enclave) SessionEstablished(peer cryptoutil.PublicKey) bool {
	s, ok := e.sessions[peer]
	return ok && s.established
}

func (e *Enclave) session(peer cryptoutil.PublicKey) (*peerSession, error) {
	if s := e.lastSess.Load(); s != nil && s.remote == peer {
		return s, nil
	}
	s, ok := e.sessions[peer]
	if !ok || !s.established {
		return nil, fmt.Errorf("core: no established session with %s", peer)
	}
	e.lastSess.Store(s)
	return s, nil
}

// establishedSession returns the session with peer, or nil. Hosts use
// it to cache the transport session per peer and seal freshness tokens
// without a map lookup per message.
func (e *Enclave) establishedSession(peer cryptoutil.PublicKey) *peerSession {
	s, ok := e.sessions[peer]
	if !ok || !s.established {
		return nil
	}
	return s
}

// SealToken produces the freshness/authentication token accompanying a
// message to peer; VerifyToken checks one on receipt. Hosts call these
// around every transport send/receive, giving all protocol messages
// replay protection (§7.1) regardless of transport.
func (e *Enclave) SealToken(peer cryptoutil.PublicKey) ([]byte, error) {
	s, err := e.session(peer)
	if err != nil {
		return nil, err
	}
	return s.transport.Seal(nil, nil), nil
}

// VerifyToken validates a token produced by the peer's SealToken.
func (e *Enclave) VerifyToken(peer cryptoutil.PublicKey, token []byte) error {
	s, err := e.session(peer)
	if err != nil {
		return err
	}
	_, err = s.transport.Open(token, nil)
	return err
}

// ErrTokenBinding reports a bound token whose authenticated type code
// does not match the frame header's declared code: the header was
// rewritten in flight.
var ErrTokenBinding = errors.New("core: frame type does not match token binding")

// SealTokenBound seals a freshness token that also authenticates the
// frame it will travel in: code (the wire registry code) rides as the
// token's plaintext and payload as additional authenticated data.
// Socket transports use this for every tokened frame, so a
// man-in-the-middle can neither rewrite payload bytes (a payment
// amount) nor relabel a frame's type (Pay and PayAck share a payload
// shape) without the receiver's verifyTokenBound rejecting it. Appends
// to dst like SealTokenAppend.
func (e *Enclave) SealTokenBound(dst []byte, peer cryptoutil.PublicKey, code byte, payload []byte) ([]byte, error) {
	s, err := e.session(peer)
	if err != nil {
		return nil, err
	}
	return s.transport.SealAppendBound(dst, code, payload), nil
}

// verifyTokenBound opens a bound token against the received frame
// bytes and checks the authenticated type code.
func verifyTokenBound(s *peerSession, token []byte, code byte, payload []byte) error {
	got, err := s.transport.OpenBound(token, payload)
	if err != nil {
		return err
	}
	if got != code {
		return fmt.Errorf("%w: token binds code %d, frame declares %d", ErrTokenBinding, got, code)
	}
	return nil
}

// HandleSealedBound is HandleSealed for transports that seal bound
// tokens (SealTokenBound): the token must authenticate the frame's
// payload bytes and type code, not just freshness. Attest messages
// carry no token (the session does not exist yet).
func (e *Enclave) HandleSealedBound(from cryptoutil.PublicKey, token []byte, code byte, payload []byte, msg wire.Message) (*Result, error) {
	if a, ok := msg.(*wire.Attest); ok {
		if a.Software {
			return e.handleSoftwareAttest(from, a)
		}
		return e.handleAttest(from, a)
	}
	s, err := e.session(from)
	if err != nil {
		return nil, err
	}
	if err := verifyTokenBound(s, token, code, payload); err != nil {
		return nil, err
	}
	return e.handleSessionMessage(from, msg)
}

// --- Replication plumbing (Alg. 3) ---

// newReplEntry takes a pooled entry off the chain's log.
func (l *replLog) newEntry() *replEntry {
	l.mu.Lock()
	ent := l.getEntryLocked()
	l.mu.Unlock()
	return ent
}

// commitLog returns the log a replicated or durable commit appends to:
// the committee log when one exists (after committee formation it and
// the WAL log are the same object — FormCommittee adopts the WAL log),
// else the WAL log. Callers have checked e.repl != nil || e.wal != nil.
func (e *Enclave) commitLog() *replLog {
	if e.repl != nil {
		return e.repl.log
	}
	return e.wal.log
}

// commit optimistically applies op and defers its externally visible
// effects until the replication chain acknowledges and/or the WAL
// flusher fsyncs. Without backups or a WAL the effects release
// immediately. In immediate mode (the simulator) the sequenced update
// is emitted synchronously; in pipelined mode (socket hosts) it only
// joins the log and the host's flusher(s) drain it in batches. In
// legacy stable-storage mode the state is sealed synchronously under a
// monotonic counter.
func (e *Enclave) commit(op *Op, out []Outbound, events []Event) (*Result, error) {
	if e.repl != nil || e.wal != nil {
		return e.commitRepl(op, out, events)
	}
	if err := e.state.Apply(op); err != nil {
		return nil, err
	}
	if e.cfg.StableStorage {
		if err := e.persist(); err != nil {
			return nil, err
		}
	}
	return &Result{Out: out, Events: events}, nil
}

// commitRepl is the replicated/durable tail of commit. The backlog
// bound is checked BEFORE the state transition so a rejected commit
// leaves primary state and the log consistent.
func (e *Enclave) commitRepl(op *Op, out []Outbound, events []Event) (*Result, error) {
	var backup cryptoutil.PublicKey
	var replicated bool
	if e.repl != nil {
		backup, replicated = e.repl.backup()
	}
	durable := e.wal != nil
	l := e.commitLog()
	if replicated || durable {
		if err := l.admit(); err != nil {
			return nil, err
		}
	}
	if err := e.state.Apply(op); err != nil {
		return nil, err
	}
	if e.cfg.StableStorage {
		if err := e.persist(); err != nil {
			return nil, err
		}
	}
	if !replicated && !durable {
		return &Result{Out: out, Events: events}, nil
	}
	ent := l.newEntry()
	ent.op = op
	ent.out = append(ent.out[:0], out...)
	ent.events = append(ent.events[:0], events...)
	ent.tauPending = replicated && op.Kind == OpMhStage && op.Stage == MhSign && op.Tau != nil
	seq, immediate := l.append(ent)
	if !immediate {
		return &Result{}, nil
	}
	ru := e.pools.getReplUpdateMsg()
	ru.Chain, ru.Seq, ru.Op = e.repl.chainID, seq, op
	return &Result{Out: oneOut(backup, ru)}, nil
}

// commitFast is commit for the payment hot path: the caller has already
// assembled its outbound messages and events into res, a Result from
// getResult, and op comes from getOp. Both recycle as soon as nothing
// retains them, so an unreplicated payment commit allocates nothing —
// and a replicated one moves the effects into a pooled log entry
// (recycled when the ack releases it), so it allocates nothing either.
// The unreplicated path pays one predicted-false nil check over the
// seed's code; the replicated tail is outlined.
func (e *Enclave) commitFast(op *Op, res *Result) (*Result, error) {
	if e.repl != nil || e.wal != nil {
		return e.commitFastRepl(op, res)
	}
	if err := e.state.Apply(op); err != nil {
		e.pools.putResult(res)
		e.pools.putOp(op)
		return nil, err
	}
	if e.cfg.StableStorage {
		if err := e.persist(); err != nil {
			e.pools.putResult(res)
			e.pools.putOp(op)
			return nil, err
		}
	}
	e.pools.putOp(op)
	return res, nil
}

// commitFastRepl is the replicated/durable tail of commitFast; see
// commitRepl for the backlog-before-Apply ordering.
func (e *Enclave) commitFastRepl(op *Op, res *Result) (*Result, error) {
	var backup cryptoutil.PublicKey
	var replicated bool
	if e.repl != nil {
		backup, replicated = e.repl.backup()
	}
	durable := e.wal != nil
	l := e.commitLog()
	if replicated || durable {
		if err := l.admit(); err != nil {
			e.pools.putResult(res)
			e.pools.putOp(op)
			return nil, err
		}
	}
	if err := e.state.Apply(op); err != nil {
		e.pools.putResult(res)
		e.pools.putOp(op)
		return nil, err
	}
	if e.cfg.StableStorage {
		if err := e.persist(); err != nil {
			e.pools.putResult(res)
			e.pools.putOp(op)
			return nil, err
		}
	}
	if !replicated && !durable {
		e.pools.putOp(op)
		return res, nil
	}
	// Replicated and/or durable: the effects wait for the chain's
	// acknowledgement and/or the WAL fsync, and the op travels to the
	// backups and/or the WAL, so both move into the pooled log entry.
	// The op itself recycles when the release consumes it.
	ent := l.newEntry()
	ent.op = op
	ent.out = append(ent.out[:0], res.Out...)
	ent.events = append(ent.events[:0], res.Events...)
	ent.pay = res.pay
	ent.tauPending = replicated && op.Kind == OpMhStage && op.Stage == MhSign && op.Tau != nil
	e.pools.putResult(res)
	seq, immediate := l.append(ent)
	if !immediate {
		return nil, nil
	}
	ru := e.pools.getReplUpdateMsg()
	ru.Chain, ru.Seq, ru.Op = e.repl.chainID, seq, op
	r := e.pools.getResult()
	r.Out = append(r.Out, Outbound{To: backup, Msg: ru})
	return r, nil
}

func (e *Enclave) handleReplUpdate(from cryptoutil.PublicKey, m *wire.ReplUpdate) (*Result, error) {
	b, ok := e.backups[m.Chain]
	if !ok {
		return nil, fmt.Errorf("core: not a member of chain %s", m.Chain)
	}
	if b.frozen {
		return nil, fmt.Errorf("core: chain %s is frozen", m.Chain)
	}
	if from != b.prev() {
		return nil, fmt.Errorf("core: replication update from non-predecessor %s", from)
	}
	op, ok2 := m.Op.(*Op)
	if !ok2 {
		return nil, fmt.Errorf("core: replication update carries %T, not *Op", m.Op)
	}
	next, hasNext := b.next()
	if m.Seq <= b.lastSeq {
		// Already applied: a transport redelivery after a connection
		// handover, or a retransmission that crossed its own ack. The
		// payload must still match what was applied.
		if reason := b.verifySoloOverlap(m.Seq, op); reason != "" {
			return e.freezeChainLocal(b, reason)
		}
		if m.Retx {
			// Lost-ack repair: relay downstream (middle) or re-serve
			// the per-sequence ack with the cached τ signatures plus a
			// fresh cumulative ack for everything applied since (tail).
			if hasNext {
				return &Result{Out: oneOut(next, m)}, nil
			}
			res := &Result{Out: oneOut(b.prev(), &wire.ReplAck{
				Chain: m.Chain, Seq: m.Seq, TauSigs: b.pendingSigs[m.Seq],
			})}
			if b.lastSeq > m.Seq {
				res.Out = append(res.Out, Outbound{To: b.prev(), Msg: &wire.ReplBatchAck{Chain: m.Chain, Seq: b.lastSeq}})
			}
			return res, nil
		}
		return nil, fmt.Errorf("core: duplicate replication update %d (have %d)", m.Seq, b.lastSeq)
	}
	if m.Seq != b.lastSeq+1 {
		// Ahead of sequence: buffer and NACK the gap (repl_heal.go)
		// instead of freezing — the frames in between were lost or
		// reordered, which retransmission recovers.
		return e.replHold(b, replHeld{firstSeq: m.Seq, op: op, retx: m.Retx})
	}
	mySigs, reason := e.applySolo(b, m.Seq, op)
	if reason != "" {
		return e.freezeChainLocal(b, reason)
	}

	res := e.pools.getResult()
	if hasNext {
		ru := e.pools.getReplUpdateMsg()
		ru.Chain, ru.Seq, ru.Op, ru.Retx = m.Chain, m.Seq, op, m.Retx
		res.Out = append(res.Out, Outbound{To: next, Msg: ru})
	} else {
		ack := e.pools.getReplAckMsg()
		ack.Chain, ack.Seq, ack.TauSigs = m.Chain, m.Seq, mySigs
		res.Out = append(res.Out, Outbound{To: b.prev(), Msg: ack})
	}
	ackPending := false
	if dreason := e.replDrainHeld(b, res, &ackPending); dreason != "" {
		return e.freezeMerged(b, res, dreason)
	}
	if ackPending {
		res.Out = append(res.Out, Outbound{To: b.prev(), Msg: &wire.ReplBatchAck{Chain: m.Chain, Seq: b.lastSeq}})
	}
	return res, nil
}

func (e *Enclave) handleReplAck(from cryptoutil.PublicKey, m *wire.ReplAck) (*Result, error) {
	// Middle-of-chain: merge our pending sigs and pass the ack up.
	if b, ok := e.backups[m.Chain]; ok {
		if from2, hasNext := b.next(); !hasNext || from2 != from {
			return nil, fmt.Errorf("core: replication ack from non-successor %s", from)
		}
		// Merge non-destructively and keep our cached sigs: a lost ack
		// upstream is repaired by a Retx re-ack, which must merge the
		// same signatures again (rememberSigs prunes the cache).
		sigs := m.TauSigs
		if pend := b.pendingSigs[m.Seq]; len(pend) > 0 {
			sigs = append(append(make([]wire.TauSig, 0, len(pend)+len(m.TauSigs)), pend...), m.TauSigs...)
		}
		ack := e.pools.getReplAckMsg()
		ack.Chain, ack.Seq, ack.TauSigs = m.Chain, m.Seq, sigs
		res := e.pools.getResult()
		res.Out = append(res.Out, Outbound{To: b.prev(), Msg: ack})
		return res, nil
	}
	// Primary: release the pending update's effects in order. Per-seq
	// acks are exactly-next — strictly ordered like the updates they
	// answer — and can never exceed what was actually flushed, so a
	// forged ack cannot release effects the chain has not applied.
	if e.repl == nil || e.repl.chainID != m.Chain {
		return nil, fmt.Errorf("core: ack for unknown chain %s", m.Chain)
	}
	backup, ok := e.repl.backup()
	if !ok || from != backup {
		return nil, fmt.Errorf("core: replication ack from non-backup %s", from)
	}
	l := e.repl.log
	l.mu.Lock()
	if m.Seq != l.ackSeq+1 || m.Seq > l.flushSeq {
		expected := l.ackSeq + 1
		l.mu.Unlock()
		return nil, fmt.Errorf("core: out-of-order ack %d (expected %d)", m.Seq, expected)
	}
	ent := l.entryAtLocked(m.Seq)
	l.mu.Unlock()

	// Validate the committee τ signatures BEFORE advancing the ack
	// cursor: a malformed ack must leave the withheld effects pending
	// (the backup can resend a well-formed ack), not discard them. Acks
	// are processed one at a time under the host's wide write lock —
	// which also excludes the WAL flusher's release — so the peeked
	// entry cannot be released underneath us.
	if len(m.TauSigs) > 0 && ent.op.Tau != nil {
		for _, ts := range m.TauSigs {
			if ts.Input < 0 || ts.Input >= len(ent.op.Tau.Inputs) {
				return nil, fmt.Errorf("core: tau signature for invalid input %d", ts.Input)
			}
			if ts.Slot < 0 || ts.Slot >= len(ent.op.Tau.Inputs[ts.Input].Sigs) {
				return nil, fmt.Errorf("core: tau signature for invalid slot %d", ts.Slot)
			}
		}
		// Fold into the (shared) τ object before the deferred sign-stage
		// message departs.
		for _, ts := range m.TauSigs {
			ent.op.Tau.Inputs[ts.Input].Sigs[ts.Slot] = ts.Sig
		}
	}
	// Release through the shared path so a durable log additionally
	// waits for the WAL fsync cursor. In the non-durable immediate mode
	// this releases exactly the acknowledged entry, preserving the
	// seed's per-update behavior bit for bit. With the signatures
	// folded, the entry no longer clamps the cumulative cursor — resume
	// it toward any batch ack that ran ahead while this ack was lost.
	l.mu.Lock()
	ent.tauPending = false
	l.ackSeq++
	l.advanceAckLocked()
	target := l.releaseTargetLocked(true)
	l.mu.Unlock()
	res := e.pools.getResult()
	e.releaseTo(l, target, res)
	return res, nil
}

// signTauInputs produces this member's signatures over τ inputs that
// spend deposits recorded in the mirrored state (committee deposits it
// co-secures).
func (e *Enclave) signTauInputs(b *replBackup, tau *chain.Transaction) ([]wire.TauSig, error) {
	if b.btcKey == nil {
		return nil, nil
	}
	var sigs []wire.TauSig
	pub := b.btcKey.Public()
	for i, in := range tau.Inputs {
		rec, ok := b.mirror.Deposits[in.Prev]
		if !ok {
			// Not our owner's deposit; other committees handle it.
			continue
		}
		slot := -1
		for j, k := range rec.Info.Script.Keys {
			if k == pub {
				slot = j
				break
			}
		}
		if slot < 0 {
			continue
		}
		cp := *tau
		if err := cp.SignInput(i, rec.Info.Script, b.btcKey); err != nil {
			return nil, err
		}
		sigs = append(sigs, wire.TauSig{Input: i, Slot: slot, Sig: cp.Inputs[i].Sigs[slot]})
	}
	return sigs, nil
}

func (e *Enclave) freezeChainLocal(b *replBackup, reason string) (*Result, error) {
	b.frozen = true
	b.mirror.Frozen = true
	res := &Result{Events: []Event{EvFrozen{Chain: b.chainID, Reason: reason}}}
	// Notify neighbours so the whole chain freezes (§6 force-freeze).
	res.Out = append(res.Out, Outbound{To: b.prev(), Msg: &wire.ReplFreeze{Chain: b.chainID, Reason: reason}})
	if next, ok := b.next(); ok {
		res.Out = append(res.Out, Outbound{To: next, Msg: &wire.ReplFreeze{Chain: b.chainID, Reason: reason}})
	}
	return res, nil
}

func (e *Enclave) handleReplFreeze(from cryptoutil.PublicKey, m *wire.ReplFreeze) (*Result, error) {
	if b, ok := e.backups[m.Chain]; ok {
		if b.frozen {
			return &Result{}, nil
		}
		b.frozen = true
		b.mirror.Frozen = true
		res := &Result{Events: []Event{EvFrozen{Chain: m.Chain, Reason: m.Reason}}}
		// Propagate away from the sender.
		if prev := b.prev(); prev != from {
			res.Out = append(res.Out, Outbound{To: prev, Msg: m})
		}
		if next, ok := b.next(); ok && next != from {
			res.Out = append(res.Out, Outbound{To: next, Msg: m})
		}
		return res, nil
	}
	if e.repl != nil && e.repl.chainID == m.Chain {
		if e.state.Frozen {
			return &Result{}, nil
		}
		// Primary frozen: the paper settles all channels and releases
		// unused deposits. The host drives that via the EvFrozen event.
		e.state.Frozen = true
		e.repl.log.clear()
		return &Result{Events: []Event{EvFrozen{Chain: m.Chain, Reason: m.Reason}}}, nil
	}
	return nil, fmt.Errorf("core: freeze for unknown chain %s", m.Chain)
}

// Freeze force-freezes a chain this enclave participates in, modelling
// a read access at a backup (or an operator-initiated halt).
func (e *Enclave) Freeze(chainID, reason string) (*Result, error) {
	if b, ok := e.backups[chainID]; ok {
		return e.freezeChainLocal(b, reason)
	}
	if e.repl != nil && e.repl.chainID == chainID {
		e.state.Frozen = true
		e.repl.log.clear()
		res := &Result{Events: []Event{EvFrozen{Chain: chainID, Reason: reason}}}
		if backup, ok := e.repl.backup(); ok {
			res.Out = append(res.Out, Outbound{To: backup, Msg: &wire.ReplFreeze{Chain: chainID, Reason: reason}})
		}
		return res, nil
	}
	return nil, fmt.Errorf("core: not a member of chain %s", chainID)
}

// deferBehindPending routes an outbound message behind any replication
// updates currently awaiting acknowledgement, preserving per-channel
// FIFO ordering between committed responses (e.g. PayAck) and
// uncommitted ones (e.g. PayNack).
func (e *Enclave) deferBehindPending(to cryptoutil.PublicKey, msg wire.Message) *Result {
	if e.repl != nil && e.repl.log.attachTail(Outbound{To: to, Msg: msg}) {
		return &Result{}
	}
	return &Result{Out: oneOut(to, msg)}
}

// persist seals the enclave state under a monotonic counter (§6.2).
// The caller's host charges the counter increment latency.
func (e *Enclave) persist() error {
	snap, err := e.snapshotState()
	if err != nil {
		return err
	}
	_, err = tee.SealStateWithCounter(e.platform, e.measurement, e.counterName, snap)
	return err
}

func (e *Enclave) snapshotState() ([]byte, error) {
	return encodeState(e.state)
}

// HandleMessage is the enclave's network entry point: it dispatches a
// peer message to the matching protocol handler. Except for the initial
// Attest, messages from peers without an established session are
// rejected.
func (e *Enclave) HandleMessage(from cryptoutil.PublicKey, msg wire.Message) (*Result, error) {
	if a, ok := msg.(*wire.Attest); ok {
		if a.Software {
			return e.handleSoftwareAttest(from, a)
		}
		return e.handleAttest(from, a)
	}
	if _, err := e.session(from); err != nil {
		return nil, err
	}
	return e.handleSessionMessage(from, msg)
}

// HandleSealed is HandleMessage preceded by freshness-token
// verification, sharing a single session lookup between the two — the
// form transports use on the per-message fast path. Attest messages
// carry no token (the session does not exist yet).
func (e *Enclave) HandleSealed(from cryptoutil.PublicKey, token []byte, msg wire.Message) (*Result, error) {
	if a, ok := msg.(*wire.Attest); ok {
		if a.Software {
			return e.handleSoftwareAttest(from, a)
		}
		return e.handleAttest(from, a)
	}
	s, err := e.session(from)
	if err != nil {
		return nil, err
	}
	if _, err := s.transport.Open(token, nil); err != nil {
		return nil, err
	}
	return e.handleSessionMessage(from, msg)
}

// handleSessionMessage dispatches a message from a peer whose session
// was already validated by the caller.
func (e *Enclave) handleSessionMessage(from cryptoutil.PublicKey, msg wire.Message) (*Result, error) {
	// An outsourced user may only issue commands; everything else on
	// its session is rejected.
	if from == e.outsourceUser {
		if m, ok := msg.(*wire.OutsourceCmd); ok {
			return e.handleOutsourceCmd(from, m)
		}
		return nil, errors.New("core: outsourced user may only send commands")
	}
	if e.state.Frozen {
		// A frozen enclave only answers settlement-signature requests
		// and freeze propagation.
		switch m := msg.(type) {
		case *wire.SigRequest:
			return e.handleSigRequest(from, m)
		case *wire.ReplFreeze:
			return e.handleReplFreeze(from, m)
		case *wire.ReplUpdate, *wire.ReplAck, *wire.ReplBatch, *wire.ReplBatchAck, *wire.ReplNack:
			return e.handleFrozenRepl(from, msg)
		default:
			return nil, ErrFrozen
		}
	}
	switch m := msg.(type) {
	case *wire.ChannelOpen:
		return e.handleChannelOpen(from, m)
	case *wire.ChannelAck:
		return e.handleChannelAck(from, m)
	case *wire.ApproveDeposit:
		return e.handleApproveDeposit(from, m)
	case *wire.ApprovedDeposit:
		return e.handleApprovedDeposit(from, m)
	case *wire.AssociateDeposit:
		return e.handleAssociateDeposit(from, m)
	case *wire.DissociateDeposit:
		return e.handleDissociateDeposit(from, m)
	case *wire.DissociateAck:
		return e.handleDissociateAck(from, m)
	case *wire.Pay:
		return e.handlePay(from, m)
	case *wire.PayAck:
		return e.handlePayAck(from, m)
	case *wire.PayNack:
		return e.handlePayNack(from, m)
	case *wire.PayBatch:
		return e.handlePayBatch(from, m)
	case *wire.PayBatchAck:
		return e.handlePayBatchAck(from, m)
	case *wire.SettleRequest:
		return e.handleSettleRequest(from, m)
	case *wire.SettleNotify:
		return e.handleSettleNotify(from, m)
	case *wire.MhLock:
		return e.handleMhLock(from, m)
	case *wire.MhSign:
		return e.handleMhSign(from, m)
	case *wire.MhPreUpdate:
		return e.handleMhPreUpdate(from, m)
	case *wire.MhUpdate:
		return e.handleMhUpdate(from, m)
	case *wire.MhPostUpdate:
		return e.handleMhPostUpdate(from, m)
	case *wire.MhRelease:
		return e.handleMhRelease(from, m)
	case *wire.MhAbort:
		return e.handleMhAbort(from, m)
	case *wire.MhAck:
		return e.handleMhAck(from, m)
	case *wire.ReplAttach:
		return e.handleReplAttach(from, m)
	case *wire.ReplAttachAck:
		return e.handleReplAttachAck(from, m)
	case *wire.ReplUpdate:
		return e.handleReplUpdate(from, m)
	case *wire.ReplAck:
		return e.handleReplAck(from, m)
	case *wire.ReplBatch:
		return e.handleReplBatch(from, m)
	case *wire.ReplBatchAck:
		return e.handleReplBatchAck(from, m)
	case *wire.ReplNack:
		return e.handleReplNack(from, m)
	case *wire.ReplFreeze:
		return e.handleReplFreeze(from, m)
	case *wire.SigRequest:
		return e.handleSigRequest(from, m)
	case *wire.SigResponse:
		return e.handleSigResponse(from, m)
	case *wire.ChanResume:
		return e.handleChanResume(from, m)
	case *wire.ChanResumeAck:
		return e.handleChanResumeAck(from, m)
	case *wire.ReplResync:
		return e.handleReplResync(from, m)
	case *wire.ReplResyncAck:
		return e.handleReplResyncAck(from, m)
	default:
		return nil, fmt.Errorf("core: unhandled message type %T", msg)
	}
}

// handleFrozenRepl lets replication traffic drain on frozen chains
// without mutating state (acks for already-applied updates may still be
// in flight when a freeze lands).
func (e *Enclave) handleFrozenRepl(cryptoutil.PublicKey, wire.Message) (*Result, error) {
	return &Result{}, nil
}

// newBtcKey mints a fresh blockchain key inside the enclave (newAddr,
// Alg. 1 line 32).
func (e *Enclave) newBtcKey() (*cryptoutil.KeyPair, error) {
	e.keySeq++
	kp, err := cryptoutil.GenerateKeyPair(e.platform.Rand())
	if err != nil {
		return nil, err
	}
	e.btcKeys[kp.Address()] = kp
	if e.wal != nil {
		// Durable mode: the key must hit stable storage alongside the
		// ops that reference its address, so it rides the next WAL
		// record. Guarded by the log mutex like the entries themselves.
		l := e.wal.log
		l.mu.Lock()
		e.wal.pendingKeys = append(e.wal.pendingKeys, kp)
		l.mu.Unlock()
	}
	return kp, nil
}

func encodeState(s *State) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("core: encoding state: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeState(data []byte) (*State, error) {
	s := new(State)
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(s); err != nil {
		return nil, fmt.Errorf("core: decoding state: %w", err)
	}
	return s, nil
}

func init() {
	gob.Register(&Op{})
}
