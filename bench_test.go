package teechain

// One benchmark per table and figure of the paper's evaluation (§7).
// Each runs the corresponding experiment in the discrete-event
// simulator and reports the *simulated* metrics via b.ReportMetric —
// wall-clock ns/op measures only how fast the simulator itself runs.
// cmd/teechain-bench regenerates the full-size tables; the benchmarks
// use measurement slices sized for iteration.
//
// Run: go test -bench=. -benchmem

import (
	"testing"
	"time"

	"teechain/internal/costmodel"
	"teechain/internal/harness"
)

// BenchmarkTable1 reproduces Table 1: single-channel throughput and
// latency across the fault-tolerance spectrum.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			name := metricName(r.Name)
			b.ReportMetric(r.Throughput, name+"_tx/s")
			b.ReportMetric(float64(r.AvgLatency)/1e6, name+"_ms")
		}
	}
}

// BenchmarkTable2 reproduces Table 2: channel operation latencies.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunTable2()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Local)/1e6, metricName(r.Operation)+"_ms")
		}
	}
}

// BenchmarkFigure4 reproduces Fig. 4: multi-hop latency versus hops
// (2..11) per fault-tolerance configuration, plus §7.3 throughput.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := harness.RunFigure4(11)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Hops == 2 || p.Hops == 11 {
				name := metricName(string(p.Config))
				b.ReportMetric(p.Latency.Seconds(), name+"_"+itoa(p.Hops)+"hop_s")
			}
		}
	}
}

// BenchmarkFigure6 reproduces Fig. 6: complete-graph throughput
// scaling, n = 1..3 committee members.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := harness.RunFigure6([]int{5, 15, 30}, []int{1, 2, 3}, 2000)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.Throughput, "m"+itoa(p.Machines)+"_n"+itoa(p.Committee)+"_tx/s")
		}
	}
}

// BenchmarkTable3 reproduces Table 3: hub-and-spoke throughput with
// shortest-path and dynamic routing.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunTable3(20)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			name := metricName(r.Approach)
			b.ReportMetric(r.Throughput, name+"_tx/s")
			b.ReportMetric(r.AvgHops, name+"_hops")
		}
	}
}

// BenchmarkFigure7 reproduces Fig. 7: hub-and-spoke throughput with G
// temporary channels on tier-1/2 edges.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := harness.RunFigure7([]int{0, 2}, 20)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.Throughput, "G"+itoa(p.TempChannels)+"_n"+itoa(p.Committee)+"_tx/s")
		}
	}
}

// BenchmarkTable4 evaluates the analytic blockchain-cost models of
// Table 4 (LN, DMC, SFMC, Teechain).
func BenchmarkTable4(b *testing.B) {
	var rows []costmodel.Row
	for i := 0; i < b.N; i++ {
		rows = costmodel.Table4(1, 4, 8, 2, 2, 3)
	}
	for _, r := range rows {
		name := metricName(r.Scheme)
		b.ReportMetric(r.Bilateral.Units, name+"_bilat_cost")
		b.ReportMetric(r.Unilateral.Units, name+"_unilat_cost")
	}
	cl := costmodel.DeriveClaims()
	b.ReportMetric(cl.FewerTxsThanLNBilateral*100, "fewer_txs_vs_LN_pct")
}

// BenchmarkPaymentChannel is a microbenchmark of the core payment path
// (wall-clock): one payment through two enclaves end to end, including
// session freshness tokens.
func BenchmarkPaymentChannel(b *testing.B) {
	net, err := NewNetwork()
	if err != nil {
		b.Fatal(err)
	}
	alice, _ := net.AddNode("alice", SiteUK, NodeOptions{})
	bob, _ := net.AddNode("bob", SiteUK, NodeOptions{})
	ch, err := net.OpenChannel(alice, bob, Amount(b.N)+1_000_000, 0)
	if err != nil {
		b.Fatal(err)
	}
	acked := 0
	done := func(bool, time.Duration, string) { acked++ }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := alice.Pay(ch, 1, done); err != nil {
			b.Fatal(err)
		}
		net.Run()
	}
	if acked != b.N {
		b.Fatalf("acked %d of %d", acked, b.N)
	}
}

func metricName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ' || r == '-' || r == '/':
			out = append(out, '_')
		}
	}
	return string(out)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
