// teechain-demo runs two Teechain enclaves over REAL TCP sockets on
// localhost, hosted by the production socket transport
// (internal/transport): length-prefixed binary frames, per-peer writer
// goroutines, automatic reconnection — the same engine the simulator
// drives (internal/core.Enclave is a transport-agnostic state machine).
//
// The demo drives the deployment exactly the way external tooling
// does: through the typed control-plane API (internal/api) with the Go
// client SDK (internal/api/client) — attesting the enclaves, opening a
// channel, streaming payment events over a subscription, and settling
// on a shared blockchain, printing wall-clock latencies of the real
// socket round trips. For N-node deployments as separate processes,
// see cmd/teechain-node.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"teechain/internal/api"
	"teechain/internal/api/client"
	"teechain/internal/chain"
	"teechain/internal/tee"
	"teechain/internal/transport"
)

func main() {
	payments := flag.Int("payments", 5, "payments to send")
	flag.Parse()

	auth, err := tee.NewAuthority("tcp-demo")
	if err != nil {
		log.Fatal(err)
	}
	lc := transport.NewLocalChain(chain.New())

	newHost := func(name string) *transport.Host {
		h, err := transport.NewHost(transport.Config{
			Name:      name,
			Authority: auth,
			Chain:     lc,
			Logf: func(format string, args ...any) {
				log.Printf(format, args...)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		return h
	}
	alice, bob := newHost("alice"), newHost("bob")
	defer alice.Close()
	defer bob.Close()

	addr, err := bob.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}

	// Serve alice's control plane and connect the typed client to it —
	// the same listener also answers netcat's line protocol.
	ctlLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctl := transport.ServeControl(ctlLn, alice)
	defer ctl.Close()
	cc, err := client.Dial(ctlLn.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer cc.Close()
	fmt.Printf("typed control client connected to %s (node %q, identity %s…)\n",
		ctlLn.Addr(), cc.Info().Name, api.FormatIdentity(cc.Info().Identity)[:16])

	if err := cc.DialPeer(addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice connected to bob at %s over real TCP\n", addr)

	if err := cc.Attest("bob"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("mutual attestation complete; secure channel established")

	chID, err := cc.OpenChannel("bob")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cc.Deposit(chID, 1000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("channel open, 1000 deposited by alice")

	// Subscribe to the event stream: acks arrive as pushes, not polls.
	// The buffer covers the whole run — events are drained only after
	// the payment loop, and an overflowing subscription drops.
	sub, err := cc.Subscribe(api.EventPayAcked.Mask()|api.EventSettled.Mask(), *payments+16)
	if err != nil {
		log.Fatal(err)
	}

	// Payments over the socket, measuring real round-trip latency via
	// the async completion handle.
	for i := 0; i < *payments; i++ {
		start := time.Now()
		h, err := cc.PayAsync(chID, 10, 1)
		if err != nil {
			log.Fatal(err)
		}
		if err := h.Wait(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("payment %d: 10 units, TCP round trip %v\n", i+1, time.Since(start).Round(time.Microsecond))
	}
	for acked := 0; acked < *payments; {
		ev := <-sub.C
		if ev.Kind == api.EventPayAcked {
			acked += int(ev.Count)
		}
	}
	fmt.Printf("event stream confirmed %d acks\n", *payments)

	// Settle and mine.
	mine, remote, err := cc.Balances(chID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("settling at alice=%d bob=%d\n", mine, remote)
	if err := cc.Settle(chID); err != nil {
		log.Fatal(err)
	}
	if _, err := cc.Mine(1); err != nil {
		log.Fatal(err)
	}
	a, err := cc.Balance()
	if err != nil {
		log.Fatal(err)
	}
	b, _ := lc.Balance(bob.WalletAddress())
	fmt.Printf("on-chain settlement: alice %d, bob %d\n", a, b)
}
