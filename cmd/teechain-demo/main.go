// teechain-demo runs two Teechain enclaves over REAL TCP sockets on
// localhost: the same protocol engine the simulator drives
// (internal/core.Enclave is a transport-agnostic state machine), here
// hosted by a minimal socket host with gob-encoded envelopes.
//
// The demo attests the enclaves to each other, opens a channel, runs
// payments, and settles on a shared blockchain — printing wall-clock
// latencies of the real socket round trips.
package main

import (
	"encoding/gob"
	"flag"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"teechain/internal/chain"
	"teechain/internal/core"
	"teechain/internal/cryptoutil"
	"teechain/internal/tee"
	"teechain/internal/wire"
)

// tcpHost is an untrusted Teechain host speaking gob-encoded envelopes
// over TCP. It implements the minimum a host owes its enclave: deliver
// messages, route outbounds, answer approval events.
type tcpHost struct {
	name    string
	enclave *core.Enclave
	wallet  *cryptoutil.KeyPair
	bc      *chain.Chain
	bcMu    *sync.Mutex

	mu    sync.Mutex
	peers map[cryptoutil.PublicKey]*gob.Encoder

	events chan core.Event
}

func newTCPHost(name string, auth *tee.Authority, bc *chain.Chain, bcMu *sync.Mutex) (*tcpHost, error) {
	platform := tee.NewPlatform(auth, name)
	wallet, err := cryptoutil.GenerateKeyPair(cryptoutil.NewDeterministicReader([]byte("demo-wallet"), []byte(name)))
	if err != nil {
		return nil, err
	}
	enclave, err := core.NewEnclave(platform, auth.PublicKey(), core.Config{
		MinConfirmations: 1,
		PayoutKey:        wallet.Public(),
	})
	if err != nil {
		return nil, err
	}
	return &tcpHost{
		name:    name,
		enclave: enclave,
		wallet:  wallet,
		bc:      bc,
		bcMu:    bcMu,
		peers:   make(map[cryptoutil.PublicKey]*gob.Encoder),
		events:  make(chan core.Event, 64),
	}, nil
}

// serve accepts one peer connection and pumps its messages into the
// enclave.
func (h *tcpHost) serve(ln net.Listener) {
	conn, err := ln.Accept()
	if err != nil {
		log.Fatalf("%s: accept: %v", h.name, err)
	}
	h.readLoop(conn)
}

// dial connects out to a peer and starts the read loop.
func (h *tcpHost) dial(addr string) *net.TCPConn {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatalf("%s: dial: %v", h.name, err)
	}
	go h.readLoop(conn)
	return conn.(*net.TCPConn)
}

func (h *tcpHost) attach(peer cryptoutil.PublicKey, conn net.Conn) {
	h.mu.Lock()
	h.peers[peer] = gob.NewEncoder(conn)
	h.mu.Unlock()
}

func (h *tcpHost) readLoop(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	for {
		var env core.Envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		h.mu.Lock()
		if _, known := h.peers[env.From]; !known {
			h.peers[env.From] = gob.NewEncoder(conn)
		}
		if _, isAttest := env.Msg.(*wire.Attest); !isAttest {
			if err := h.enclave.VerifyToken(env.From, env.Token); err != nil {
				log.Printf("%s: dropping %T: %v", h.name, env.Msg, err)
				h.mu.Unlock()
				continue
			}
		}
		res, err := h.enclave.HandleMessage(env.From, env.Msg)
		if err != nil {
			log.Printf("%s: enclave rejected %T: %v", h.name, env.Msg, err)
			h.mu.Unlock()
			continue
		}
		h.dispatchLocked(res)
		h.mu.Unlock()
	}
}

// dispatch handles an enclave result: send outbounds, react to events.
func (h *tcpHost) dispatch(res *core.Result) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.dispatchLocked(res)
}

// call runs an enclave entry point under the host lock and dispatches
// its result, serialising main-thread operations against the socket
// read loop.
func (h *tcpHost) call(fn func(*core.Enclave) (*core.Result, error)) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	res, err := fn(h.enclave)
	if err != nil {
		return err
	}
	h.dispatchLocked(res)
	return nil
}

// check evaluates a predicate over enclave state under the host lock.
func (h *tcpHost) check(pred func(*core.Enclave) bool) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return pred(h.enclave)
}

func (h *tcpHost) dispatchLocked(res *core.Result) {
	if res == nil {
		return
	}
	for _, out := range res.Out {
		enc, ok := h.peers[out.To]
		if !ok {
			log.Printf("%s: no connection to %s", h.name, out.To)
			continue
		}
		env := core.Envelope{From: h.enclave.Identity(), Msg: out.Msg}
		if _, isAttest := out.Msg.(*wire.Attest); !isAttest {
			token, err := h.enclave.SealToken(out.To)
			if err != nil {
				log.Printf("%s: seal token: %v", h.name, err)
				continue
			}
			env.Token = token
		}
		if err := enc.Encode(&env); err != nil {
			log.Printf("%s: encode: %v", h.name, err)
		}
	}
	res.ForEachEvent(func(ev core.Event) {
		h.handleEventLocked(ev)
		select {
		case h.events <- ev:
		default:
		}
	})
}

func (h *tcpHost) handleEventLocked(ev core.Event) {
	switch e := ev.(type) {
	case core.EvChannelRequest:
		res, err := h.enclave.AcceptChannel(e.Channel, e.Remote, e.RemoteAddr, h.wallet.Address(), false)
		if err != nil {
			log.Printf("%s: accept channel: %v", h.name, err)
			return
		}
		h.dispatchLocked(res)
	case core.EvDepositApprovalNeeded:
		h.bcMu.Lock()
		conf := h.bc.Confirmations(e.Deposit.Point.Tx)
		h.bcMu.Unlock()
		res, err := h.enclave.ConfirmRemoteDeposit(e.Remote, e.Deposit, conf)
		if err != nil {
			log.Printf("%s: approve deposit: %v", h.name, err)
			return
		}
		h.dispatchLocked(res)
	case core.EvSettlementReady:
		if e.Tx != nil {
			h.bcMu.Lock()
			if _, err := h.bc.Submit(e.Tx); err != nil {
				log.Printf("%s: submit settlement: %v", h.name, err)
			}
			h.bcMu.Unlock()
		}
	}
}

// await blocks until an event matching pred arrives.
func (h *tcpHost) await(pred func(core.Event) bool) core.Event {
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev := <-h.events:
			if pred(ev) {
				return ev
			}
		case <-deadline:
			log.Fatalf("%s: timed out waiting for event", h.name)
		}
	}
}

func main() {
	payments := flag.Int("payments", 5, "payments to send in each direction")
	flag.Parse()

	gob.Register(&core.Op{})

	auth, err := tee.NewAuthority("tcp-demo")
	if err != nil {
		log.Fatal(err)
	}
	bc := chain.New()
	var bcMu sync.Mutex

	alice, err := newTCPHost("alice", auth, bc, &bcMu)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := newTCPHost("bob", auth, bc, &bcMu)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go bob.serve(ln)
	conn := alice.dial(ln.Addr().String())
	alice.attach(bob.enclave.Identity(), conn)
	fmt.Printf("alice connected to bob at %s over real TCP\n", ln.Addr())

	// Out-of-band: exchange payout keys (the directory role).
	if err := alice.call(func(e *core.Enclave) (*core.Result, error) {
		return e.RegisterPayoutKey(bob.wallet.Public())
	}); err != nil {
		log.Fatal(err)
	}
	if err := bob.call(func(e *core.Enclave) (*core.Result, error) {
		return e.RegisterPayoutKey(alice.wallet.Public())
	}); err != nil {
		log.Fatal(err)
	}

	// Mutual remote attestation over the socket.
	bobID := bob.enclave.Identity()
	aliceID := alice.enclave.Identity()
	if err := alice.call(func(e *core.Enclave) (*core.Result, error) {
		return e.StartAttest(bobID)
	}); err != nil {
		log.Fatal(err)
	}
	waitFor(func() bool {
		return alice.check(func(e *core.Enclave) bool { return e.SessionEstablished(bobID) }) &&
			bob.check(func(e *core.Enclave) bool { return e.SessionEstablished(aliceID) })
	})
	fmt.Println("mutual attestation complete; secure channel established")

	// Fund a deposit on the shared chain and open the channel.
	alice.mu.Lock()
	script, err := alice.enclave.NewDepositScript()
	alice.mu.Unlock()
	if err != nil {
		log.Fatal(err)
	}
	bcMu.Lock()
	point, err := bc.Fund(script, 1000)
	bcMu.Unlock()
	if err != nil {
		log.Fatal(err)
	}
	if err := alice.call(func(e *core.Enclave) (*core.Result, error) {
		return e.RegisterDeposit(e.DepositInfoFor(point, 1000, script))
	}); err != nil {
		log.Fatal(err)
	}

	chID := wire.ChannelID("tcp-demo-channel")
	if err := alice.call(func(e *core.Enclave) (*core.Result, error) {
		return e.OpenChannel(chID, bobID, alice.wallet.Address(), false)
	}); err != nil {
		log.Fatal(err)
	}
	waitFor(func() bool {
		return alice.check(func(e *core.Enclave) bool {
			c, ok := e.State().Channels[chID]
			return ok && c.Open
		})
	})

	if err := alice.call(func(e *core.Enclave) (*core.Result, error) {
		return e.RequestDepositApproval(bobID, point)
	}); err != nil {
		log.Fatal(err)
	}
	waitFor(func() bool {
		return alice.check(func(e *core.Enclave) bool { return e.State().ApprovedMine[bobID][point] })
	})
	if err := alice.call(func(e *core.Enclave) (*core.Result, error) {
		return e.AssociateDeposit(chID, point)
	}); err != nil {
		log.Fatal(err)
	}
	waitFor(func() bool {
		return bob.check(func(e *core.Enclave) bool {
			c, ok := e.State().Channels[chID]
			return ok && len(c.RemoteDeps) == 1
		})
	})
	fmt.Println("channel open, 1000 deposited by alice")

	// Payments over the socket, measuring real round-trip latency.
	for i := 0; i < *payments; i++ {
		start := time.Now()
		if err := alice.call(func(e *core.Enclave) (*core.Result, error) {
			return e.Pay(chID, 10, 1)
		}); err != nil {
			log.Fatal(err)
		}
		alice.await(func(ev core.Event) bool {
			_, ok := ev.(core.EvPayAcked)
			return ok
		})
		fmt.Printf("payment %d: 10 units, TCP round trip %v\n", i+1, time.Since(start).Round(time.Microsecond))
	}

	// Settle and mine.
	alice.mu.Lock()
	st := alice.enclave.State().Channels[chID]
	fmt.Printf("settling at alice=%d bob=%d\n", st.MyBal, st.RemoteBal)
	sr, err := alice.enclave.Settle(chID)
	if err != nil {
		alice.mu.Unlock()
		log.Fatal(err)
	}
	alice.dispatchLocked(sr.Result)
	alice.mu.Unlock()
	for _, tx := range sr.Txs {
		bcMu.Lock()
		if _, err := bc.Submit(tx); err != nil {
			log.Fatal(err)
		}
		bcMu.Unlock()
	}
	bcMu.Lock()
	bc.MineBlock()
	a := bc.BalanceByAddress(alice.wallet.Address())
	b := bc.BalanceByAddress(bob.wallet.Address())
	bcMu.Unlock()
	fmt.Printf("on-chain settlement: alice %d, bob %d\n", a, b)
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatal("timed out waiting for condition")
		}
		time.Sleep(time.Millisecond)
	}
}
