// teechain-demo runs two Teechain enclaves over REAL TCP sockets on
// localhost, hosted by the production socket transport
// (internal/transport): length-prefixed binary frames, per-peer writer
// goroutines, automatic reconnection — the same engine the simulator
// drives (internal/core.Enclave is a transport-agnostic state machine).
//
// The demo attests the enclaves to each other, opens a channel, runs
// payments, and settles on a shared blockchain — printing wall-clock
// latencies of the real socket round trips. For N-node deployments as
// separate processes, see cmd/teechain-node.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"teechain/internal/chain"
	"teechain/internal/tee"
	"teechain/internal/transport"
)

func main() {
	payments := flag.Int("payments", 5, "payments to send")
	flag.Parse()

	auth, err := tee.NewAuthority("tcp-demo")
	if err != nil {
		log.Fatal(err)
	}
	lc := transport.NewLocalChain(chain.New())

	newHost := func(name string) *transport.Host {
		h, err := transport.NewHost(transport.Config{
			Name:      name,
			Authority: auth,
			Chain:     lc,
			Logf: func(format string, args ...any) {
				log.Printf(format, args...)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		return h
	}
	alice, bob := newHost("alice"), newHost("bob")
	defer alice.Close()
	defer bob.Close()

	addr, err := bob.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	if err := alice.DialPeer(addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice connected to bob at %s over real TCP\n", addr)

	const opTimeout = 10 * time.Second
	if err := alice.Attest("bob", opTimeout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("mutual attestation complete; secure channel established")

	chID, err := alice.OpenChannel("bob", opTimeout)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := alice.FundChannel(chID, 1000, opTimeout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("channel open, 1000 deposited by alice")

	// Payments over the socket, measuring real round-trip latency.
	for i := 0; i < *payments; i++ {
		start := time.Now()
		if err := alice.Pay(chID, 10); err != nil {
			log.Fatal(err)
		}
		if err := alice.AwaitAcked(uint64(i+1), opTimeout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("payment %d: 10 units, TCP round trip %v\n", i+1, time.Since(start).Round(time.Microsecond))
	}

	// Settle and mine.
	mine, remote, err := alice.ChannelBalances(chID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("settling at alice=%d bob=%d\n", mine, remote)
	if err := alice.Settle(chID); err != nil {
		log.Fatal(err)
	}
	if _, err := lc.MineBlocks(1); err != nil {
		log.Fatal(err)
	}
	a, _ := lc.Balance(alice.WalletAddress())
	b, _ := lc.Balance(bob.WalletAddress())
	fmt.Printf("on-chain settlement: alice %d, bob %d\n", a, b)
}
