// teechain-attack is the adversary driver. It started life as a demo
// of the transaction-delay attack of §2.2 (the `delay` subcommand,
// still the default) and has grown into a byzantine toolkit over
// internal/attack:
//
//	teechain-attack delay  [-tau N] [-delay N]
//	    Lightning theft via transaction delay vs. Teechain's
//	    asynchronous settlement (the original demo).
//	teechain-attack proxy  -listen addr -upstream addr
//	                       [-corrupt code] [-withhold code] [-replay code]
//	    Frame-aware MITM: point a victim's dial at -listen and watch
//	    which mutations the transport survives. Codes are wire registry
//	    codes (pay=10, replbatchack=35; see internal/wire).
//	teechain-attack forge  -target addr [-channel id] [-amount n]
//	    Dial a host's peer port and inject forged payment frames from
//	    an unattested identity with an unauthenticatable token.
//
// Every attack here is expected to FAIL against a healthy deployment —
// rejected frames, not moved money. A run that steals funds is a bug
// report.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync/atomic"

	"teechain"
	"teechain/internal/attack"
	"teechain/internal/chain"
	"teechain/internal/lightning"
	"teechain/internal/wire"
)

func main() {
	log.SetFlags(0)
	args := os.Args[1:]
	cmd := "delay"
	if len(args) > 0 && (args[0] == "delay" || args[0] == "proxy" || args[0] == "forge") {
		cmd, args = args[0], args[1:]
	}
	switch cmd {
	case "delay":
		delayCmd(args)
	case "proxy":
		proxyCmd(args)
	case "forge":
		forgeCmd(args)
	}
}

func proxyCmd(args []string) {
	fs := flag.NewFlagSet("proxy", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "address victims dial")
	upstream := fs.String("upstream", "", "real peer address to relay to")
	corrupt := fs.Int("corrupt", 0, "wire code to corrupt (once); 0 disables")
	withhold := fs.Int("withhold", 0, "wire code to withhold (every frame); 0 disables")
	replay := fs.Int("replay", 0, "wire code to record and replay after 3 frames; 0 disables")
	fs.Parse(args)
	if *upstream == "" {
		log.Fatal("proxy: -upstream is required")
	}
	var hits atomic.Uint64
	var ms []attack.Mutator
	if *corrupt != 0 {
		ms = append(ms, attack.CorruptOnce(attack.ClientToServer, byte(*corrupt), &hits))
		ms = append(ms, attack.CorruptOnce(attack.ServerToClient, byte(*corrupt), &hits))
	}
	if *withhold != 0 {
		ms = append(ms, attack.Withhold(attack.ClientToServer, byte(*withhold), -1, &hits))
		ms = append(ms, attack.Withhold(attack.ServerToClient, byte(*withhold), -1, &hits))
	}
	if *replay != 0 {
		ms = append(ms, attack.ReplayAfter(attack.ClientToServer, byte(*replay), 3, &hits))
	}
	p, err := attack.NewProxy(*listen, *upstream, attack.Chain(ms...), log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MITM proxy on %s → %s (ctrl-c to stop)\n", p.Addr(), *upstream)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	p.Close()
	st := p.Stats()
	fmt.Printf("forwarded=%d withheld=%d injected=%d mutated=%d\n",
		st.Forwarded, st.Withheld, st.Injected, hits.Load())
}

func forgeCmd(args []string) {
	fs := flag.NewFlagSet("forge", flag.ExitOnError)
	target := fs.String("target", "", "victim peer port to dial")
	channel := fs.String("channel", "ch-forged", "channel id to claim")
	amount := fs.Int64("amount", 500, "payment amount to forge")
	fs.Parse(args)
	if *target == "" {
		log.Fatal("forge: -target is required")
	}
	mallory, err := attack.ForgeIdentity("cli")
	if err != nil {
		log.Fatal(err)
	}
	frame, err := attack.ForgeFrame(mallory.Public(), []byte("forged-token"),
		&wire.Pay{Channel: wire.ChannelID(*channel), Amount: chain.Amount(*amount), Count: 1})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := attack.Inject(*target, mallory.Public(), "mallory", [][]byte{frame})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sent %d forged frame(s); peer closed: %v\n", rep.FramesSent, rep.PeerClosed)
	fmt.Println("check the victim's stats: the frames must show up as rejected, not as payments")
}

func delayCmd(args []string) {
	fs := flag.NewFlagSet("delay", flag.ExitOnError)
	tau := fs.Uint64("tau", 6, "Lightning dispute window in blocks")
	delay := fs.Uint64("delay", 8, "blocks the attacker can delay the victim's transactions")
	fs.Parse(args)

	fmt.Printf("adversary capability: delay victim transactions for %d blocks\n", *delay)
	fmt.Printf("Lightning dispute window τ = %d blocks\n\n", *tau)

	stolen := lightningRun(*tau, *delay)
	if stolen {
		fmt.Printf("Lightning: attacker STOLE the victim's funds (delay %d > τ %d)\n", *delay, *tau)
	} else {
		fmt.Printf("Lightning: theft failed (delay %d <= τ %d) — but the victim's funds were locked behind a τ-block window\n", *delay, *tau)
	}

	teechainRun(*delay)
	fmt.Println("Teechain: settlement delayed but funds never at risk — no synchrony window exists")
}

func lightningRun(tau, delay uint64) bool {
	c := chain.New()
	attacker, err := lightning.NewParty("attacker")
	if err != nil {
		log.Fatal(err)
	}
	victim, err := lightning.NewParty("victim")
	if err != nil {
		log.Fatal(err)
	}
	utxo, err := c.FundKey(attacker.PayoutKey(), 1000)
	if err != nil {
		log.Fatal(err)
	}
	ch, err := lightning.OpenChannel(c, attacker, victim, utxo, 1000, tau)
	if err != nil {
		log.Fatal(err)
	}
	for !ch.WaitOpen() {
		c.MineBlock()
	}
	if err := ch.Pay(900); err != nil {
		log.Fatal(err)
	}
	if _, err := ch.BroadcastCommitment(0, true); err != nil {
		log.Fatal(err)
	}
	c.MineBlock()
	j, err := ch.Justice(0, true)
	if err != nil {
		log.Fatal(err)
	}
	jid, _ := c.Submit(j)
	c.Censor(jid, c.Height()+delay)
	c.MineBlocks(int(tau))
	if sweep, err := ch.Sweep(0, true); err == nil {
		if _, err := c.Submit(sweep); err != nil {
			log.Fatal(err)
		}
	}
	c.MineBlocks(int(delay) + 2)
	return c.BalanceByAddress(victim.PayoutAddress()) == 0
}

func teechainRun(delay uint64) {
	net, err := teechain.NewNetwork()
	if err != nil {
		log.Fatal(err)
	}
	attacker, _ := net.AddNode("attacker", teechain.SiteUK, teechain.NodeOptions{})
	victim, _ := net.AddNode("victim", teechain.SiteUS, teechain.NodeOptions{})
	ch, err := net.OpenChannel(attacker, victim, 1000, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := attacker.Pay(ch, 900, nil); err != nil {
		log.Fatal(err)
	}
	net.Run()
	sr, err := victim.Settle(ch)
	if err != nil {
		log.Fatal(err)
	}
	net.Run()
	net.Chain().Censor(sr.Txs[0].ID(), net.Chain().Height()+delay)
	net.MineBlocks(int(delay) + 2)
	net.Run()
	if net.OnChainBalance(victim) != 900 {
		log.Fatalf("teechain victim recovered %d, want 900", net.OnChainBalance(victim))
	}
}
