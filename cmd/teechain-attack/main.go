// teechain-attack demonstrates the transaction-delay attack of §2.2
// against both systems: it steals funds from a Lightning channel and
// fails against Teechain. A compact CLI wrapper over the same scenario
// as examples/async-attack; run with -tau to vary the Lightning dispute
// window and watch the safety/liveness trade-off Teechain eliminates.
package main

import (
	"flag"
	"fmt"
	"log"

	"teechain"
	"teechain/internal/chain"
	"teechain/internal/lightning"
)

func main() {
	tau := flag.Uint64("tau", 6, "Lightning dispute window in blocks")
	delay := flag.Uint64("delay", 8, "blocks the attacker can delay the victim's transactions")
	flag.Parse()

	fmt.Printf("adversary capability: delay victim transactions for %d blocks\n", *delay)
	fmt.Printf("Lightning dispute window τ = %d blocks\n\n", *tau)

	stolen := lightningRun(*tau, *delay)
	if stolen {
		fmt.Printf("Lightning: attacker STOLE the victim's funds (delay %d > τ %d)\n", *delay, *tau)
	} else {
		fmt.Printf("Lightning: theft failed (delay %d <= τ %d) — but the victim's funds were locked behind a τ-block window\n", *delay, *tau)
	}

	teechainRun(*delay)
	fmt.Println("Teechain: settlement delayed but funds never at risk — no synchrony window exists")
}

func lightningRun(tau, delay uint64) bool {
	c := chain.New()
	attacker, err := lightning.NewParty("attacker")
	if err != nil {
		log.Fatal(err)
	}
	victim, err := lightning.NewParty("victim")
	if err != nil {
		log.Fatal(err)
	}
	utxo, err := c.FundKey(attacker.PayoutKey(), 1000)
	if err != nil {
		log.Fatal(err)
	}
	ch, err := lightning.OpenChannel(c, attacker, victim, utxo, 1000, tau)
	if err != nil {
		log.Fatal(err)
	}
	for !ch.WaitOpen() {
		c.MineBlock()
	}
	if err := ch.Pay(900); err != nil {
		log.Fatal(err)
	}
	if _, err := ch.BroadcastCommitment(0, true); err != nil {
		log.Fatal(err)
	}
	c.MineBlock()
	j, err := ch.Justice(0, true)
	if err != nil {
		log.Fatal(err)
	}
	jid, _ := c.Submit(j)
	c.Censor(jid, c.Height()+delay)
	c.MineBlocks(int(tau))
	if sweep, err := ch.Sweep(0, true); err == nil {
		if _, err := c.Submit(sweep); err != nil {
			log.Fatal(err)
		}
	}
	c.MineBlocks(int(delay) + 2)
	return c.BalanceByAddress(victim.PayoutAddress()) == 0
}

func teechainRun(delay uint64) {
	net, err := teechain.NewNetwork()
	if err != nil {
		log.Fatal(err)
	}
	attacker, _ := net.AddNode("attacker", teechain.SiteUK, teechain.NodeOptions{})
	victim, _ := net.AddNode("victim", teechain.SiteUS, teechain.NodeOptions{})
	ch, err := net.OpenChannel(attacker, victim, 1000, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := attacker.Pay(ch, 900, nil); err != nil {
		log.Fatal(err)
	}
	net.Run()
	sr, err := victim.Settle(ch)
	if err != nil {
		log.Fatal(err)
	}
	net.Run()
	net.Chain().Censor(sr.Txs[0].ID(), net.Chain().Height()+delay)
	net.MineBlocks(int(delay) + 2)
	net.Run()
	if net.OnChainBalance(victim) != 900 {
		log.Fatalf("teechain victim recovered %d, want 900", net.OnChainBalance(victim))
	}
}
