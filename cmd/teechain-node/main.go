// teechain-node is a deployed Teechain node: one enclave hosted over
// real TCP sockets (internal/transport), driven through its control
// port. The control listener sniffs both control protocols per
// connection: the typed, versioned control-plane API (internal/api,
// spoken by the Go client SDK internal/api/client, the harness, and
// the benches) and the legacy line protocol for humans with netcat.
// N-node topologies — hub-and-spoke, multihop chains, committees —
// run as real processes, one teechain-node each.
//
// One node in a cluster owns the blockchain and serves it to the rest
// (-chain-listen); the others dial it (-chain). A deployment shares an
// attestation authority seed (-authority).
//
// Example 3-node cluster (see README.md for the walkthrough):
//
//	teechain-node -name hub    -listen :7100 -control :7101 -chain-listen :7102
//	teechain-node -name spoke1 -listen :7200 -control :7201 -chain localhost:7102 -peers localhost:7100
//	teechain-node -name spoke2 -listen :7300 -control :7301 -chain localhost:7102 -peers localhost:7100
//
//	nc localhost 7201
//	  attest hub
//	  open hub
//	  fund <channel> 100000
//	  pay <channel> 10 100
//	  settle <channel>
//	  mine
//	  balance
//
// Flags may also come from a JSON config file (-config); explicit flags
// override file values. -pprof serves net/http/pprof on a dedicated
// port for live profiling of a deployed node.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof: live profiling of deployed nodes
	"os"
	"os/signal"
	"strings"
	"syscall"

	"teechain/internal/api"
	"teechain/internal/chain"
	"teechain/internal/tee"
	"teechain/internal/transport"
)

// nodeConfig is the JSON config file schema; zero values defer to
// flags/defaults.
type nodeConfig struct {
	Name             string   `json:"name"`
	Listen           string   `json:"listen"`
	Control          string   `json:"control"`
	Peers            []string `json:"peers"`
	Chain            string   `json:"chain"`
	ChainListen      string   `json:"chain_listen"`
	Authority        string   `json:"authority"`
	WalletSeed       string   `json:"wallet_seed"`
	MinConfirmations uint64   `json:"min_confirmations"`
	Pprof            string   `json:"pprof"`
	Data             string   `json:"data"`
	FeeBase          int64    `json:"fee_base"`
	FeeRatePPM       uint64   `json:"fee_rate_ppm"`
}

func main() {
	var (
		configPath  = flag.String("config", "", "JSON config file; flags override its values")
		name        = flag.String("name", "", "node name, unique within the deployment (required)")
		listen      = flag.String("listen", "", "peer listen address, e.g. :7100")
		control     = flag.String("control", "", "control API listen address (required)")
		peers       = flag.String("peers", "", "comma-separated peer addresses to dial")
		chainAddr   = flag.String("chain", "", "chain endpoint address to dial")
		chainListen = flag.String("chain-listen", "", "serve an in-process chain on this address (the cluster's ledger owner)")
		authority   = flag.String("authority", "", "shared attestation authority seed (default: \"teechain\")")
		walletSeed  = flag.String("wallet-seed", "", "wallet key seed (default: node name)")
		minConf     = flag.Uint64("min-confirmations", 0, "deposit approval depth (default 1)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for live profiling")
		dataDir     = flag.String("data", "", "data directory for durable enclave state (WAL + sealed snapshots); empty = in-memory only")
		feeBase     = flag.Int64("fee-base", 0, "flat forwarding fee charged per relayed payment (default 0: relay for free)")
		feeRate     = flag.Uint64("fee-rate", 0, "proportional forwarding fee in parts per million of the forwarded amount, 0..1000000 (default 0)")
	)
	flag.Parse()

	cfg := nodeConfig{}
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			log.Fatalf("reading config: %v", err)
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			log.Fatalf("parsing config %s: %v", *configPath, err)
		}
	}
	override := func(dst *string, v string) {
		if v != "" {
			*dst = v
		}
	}
	override(&cfg.Name, *name)
	override(&cfg.Listen, *listen)
	override(&cfg.Control, *control)
	override(&cfg.Chain, *chainAddr)
	override(&cfg.ChainListen, *chainListen)
	override(&cfg.Authority, *authority)
	override(&cfg.WalletSeed, *walletSeed)
	override(&cfg.Pprof, *pprofAddr)
	override(&cfg.Data, *dataDir)
	if *peers != "" {
		cfg.Peers = strings.Split(*peers, ",")
	}
	if *minConf != 0 {
		cfg.MinConfirmations = *minConf
	}
	if *feeBase != 0 {
		cfg.FeeBase = *feeBase
	}
	if *feeRate != 0 {
		cfg.FeeRatePPM = *feeRate
	}
	// Reject a malformed policy before the node boots: a typo'd fee
	// should die here with the offending value, not surface later as a
	// generic enclave-boot failure.
	if cfg.FeeBase < 0 {
		log.Fatalf("teechain-node: -fee-base %d is negative", cfg.FeeBase)
	}
	if cfg.FeeRatePPM > 1_000_000 {
		log.Fatalf("teechain-node: -fee-rate %d exceeds 1000000 ppm (100%%)", cfg.FeeRatePPM)
	}
	if cfg.Authority == "" {
		cfg.Authority = "teechain"
	}
	if cfg.Name == "" {
		log.Fatal("teechain-node: -name (or config name) is required")
	}
	if cfg.Control == "" {
		log.Fatal("teechain-node: -control (or config control) is required")
	}
	if (cfg.Chain == "") == (cfg.ChainListen == "") {
		log.Fatal("teechain-node: exactly one of -chain and -chain-listen is required")
	}

	if err := run(cfg); err != nil {
		log.Fatal(err)
	}
}

func run(cfg nodeConfig) error {
	auth, err := tee.NewAuthority(cfg.Authority)
	if err != nil {
		return err
	}

	if cfg.Pprof != "" {
		// net/http/pprof registers its handlers on the default mux; a
		// dedicated listener keeps profiling off the protocol ports.
		ln, err := net.Listen("tcp", cfg.Pprof)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer ln.Close()
		go func() {
			if err := http.Serve(ln, nil); err != nil && !strings.Contains(err.Error(), "use of closed") {
				log.Printf("%s: pprof server: %v", cfg.Name, err)
			}
		}()
		log.Printf("%s: pprof on http://%s/debug/pprof/", cfg.Name, ln.Addr())
	}

	// Chain access: own the ledger and serve it, or dial the owner.
	var access transport.ChainAccess
	var chainSrv *transport.ChainServer
	if cfg.ChainListen != "" {
		lc := transport.NewLocalChain(chain.New())
		ln, err := net.Listen("tcp", cfg.ChainListen)
		if err != nil {
			return fmt.Errorf("chain listener: %w", err)
		}
		chainSrv = transport.ServeChain(ln, lc)
		defer chainSrv.Close()
		log.Printf("%s: serving chain on %s", cfg.Name, ln.Addr())
		access = lc
	} else {
		rc, err := transport.DialChain(cfg.Chain)
		if err != nil {
			return err
		}
		defer rc.Close()
		access = rc
	}

	host, err := transport.NewHost(transport.Config{
		Name:             cfg.Name,
		Authority:        auth,
		Chain:            access,
		WalletSeed:       cfg.WalletSeed,
		MinConfirmations: cfg.MinConfirmations,
		DataDir:          cfg.Data,
		FeeBase:          chain.Amount(cfg.FeeBase),
		FeeRatePPM:       uint32(cfg.FeeRatePPM),
		Logf: func(format string, args ...any) {
			log.Printf(format, args...)
		},
	})
	if err != nil {
		return err
	}
	defer host.Close()
	if cfg.FeeBase != 0 || cfg.FeeRatePPM != 0 {
		log.Printf("%s: forwarding fee policy: base %d + %d ppm", cfg.Name, cfg.FeeBase, cfg.FeeRatePPM)
	}

	if cfg.Listen != "" {
		addr, err := host.Listen(cfg.Listen)
		if err != nil {
			return fmt.Errorf("peer listener: %w", err)
		}
		log.Printf("%s: listening for peers on %s", cfg.Name, addr)
	}
	for _, peer := range cfg.Peers {
		peer = strings.TrimSpace(peer)
		if peer == "" {
			continue
		}
		if err := host.DialPeer(peer); err != nil {
			return err
		}
		log.Printf("%s: dialing peer %s", cfg.Name, peer)
	}

	ctlLn, err := net.Listen("tcp", cfg.Control)
	if err != nil {
		return fmt.Errorf("control listener: %w", err)
	}
	ctl := transport.ServeControl(ctlLn, host)
	defer ctl.Close()
	id := host.Identity()
	log.Printf("%s: control API (typed v%d + line) on %s, identity %x",
		cfg.Name, api.Version, ctlLn.Addr(), id[:])

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("%s: %v, shutting down", cfg.Name, s)
	// Close the host before the control server (the defers run in the
	// opposite order): a closing host fails blocked control waits fast
	// (ErrClosed -> CodeUnavailable), so queued payment completions
	// cannot hold shutdown for their full timeouts. Host.Close is
	// idempotent; the deferred call becomes a no-op.
	host.Close()
	return nil
}
