// teechain-bench regenerates every table and figure of the paper's
// evaluation (§7) from this implementation, printing paper-style
// output. See EXPERIMENTS.md for the recorded paper-vs-measured
// comparison.
//
// Usage:
//
//	teechain-bench            # run everything (several minutes)
//	teechain-bench -run table1,fig4
//	teechain-bench -quick     # reduced measurement lengths
//
// Deployment-path benchmarking (real TCP cluster, see socket.go):
//
//	teechain-bench -socket                          # scaling table
//	teechain-bench -socket -channels 1,8 -batch 64
//	teechain-bench -socket -socketjson BENCH_socket.json
//	teechain-bench -socket -socketjson F -socketcompare BENCH_socket.json
//
// Replicated-payment benchmarking (committee chains over real TCP, see
// replication.go):
//
//	teechain-bench -socket -committee 0,1,2,4
//	teechain-bench -socket -committee 2 -repljson F -replcompare BENCH_replication.json
//
// Durability benchmarking (WAL-durable vs in-memory sender, see
// durability.go):
//
//	teechain-bench -socket -durable
//	teechain-bench -socket -durable -durjson F -durcompare BENCH_durability.json
//
// Routed-payment benchmarking (gossip graph, fee-aware pathfinding,
// routed multihop over a random topology, see routing.go):
//
//	teechain-bench -socket -route
//	teechain-bench -socket -route -routejson F -routecompare BENCH_routing.json
//
// Overload benchmarking (admission control under overdrive, see
// overload.go):
//
//	teechain-bench -socket -overdrive 10
//	teechain-bench -socket -overdrive 10 -overloadjson F -overloadcompare BENCH_overload.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"testing"
	"time"
)

import (
	"teechain"
	"teechain/internal/harness"
)

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiments: table1,table2,table3,table4,fig4,fig6,fig7")
	quick := flag.Bool("quick", false, "reduced measurement lengths")
	benchJSON := flag.String("benchjson", "", "write the payment micro-benchmark (ns/op, allocs/op, B/op, simulated tx/s) as JSON to this file and exit")
	compare := flag.String("compare", "", "with -benchjson: compare the fresh snapshot against this baseline JSON and exit nonzero on >25% ns/op regression or any allocs/op increase")
	socket := flag.Bool("socket", false, "run the real-TCP socket cluster benchmark (channel scaling) and exit")
	channels := flag.String("channels", "1,2,4,8", "with -socket: comma-separated channel counts to measure")
	socketPay := flag.Int("spay", 20000, "with -socket: payments per channel")
	batch := flag.Int("batch", 64, "with -socket: payments per PayBatch frame (1 = unbatched Pay frames)")
	sreps := flag.Int("sreps", 2, "with -socket: repetitions per channel count (best tx/s kept)")
	socketJSON := flag.String("socketjson", "", "with -socket: write the snapshot as JSON to this file")
	socketCompare := flag.String("socketcompare", "", "with -socket: compare against this baseline JSON and exit nonzero on >25% tx/s regression")
	committee := flag.String("committee", "", "with -socket: comma-separated committee sizes to measure (e.g. 0,1,2,4); runs the replicated-payment benchmark instead of channel scaling")
	replJSON := flag.String("repljson", "", "with -socket -committee: write the replication snapshot as JSON to this file")
	replCompare := flag.String("replcompare", "", "with -socket -committee: compare against this baseline JSON and exit nonzero on >25% tx/s regression")
	durable := flag.Bool("durable", false, "with -socket: run the durability benchmark (WAL-durable vs in-memory sender) instead of channel scaling")
	durJSON := flag.String("durjson", "", "with -socket -durable: write the durability snapshot as JSON to this file")
	durCompare := flag.String("durcompare", "", "with -socket -durable: compare against this baseline JSON and exit nonzero on >25% durable tx/s regression or a durable/in-memory ratio below 0.25")
	routeBench := flag.Bool("route", false, "with -socket: run the routed-payment benchmark (gossip graph, fee-aware pathfinding, routed multihop) instead of channel scaling")
	routePay := flag.Int("rpay", 200, "with -socket -route: routed payments per run")
	routeFinds := flag.Int("rfinds", 2000, "with -socket -route: pathfinding queries per run")
	routeJSON := flag.String("routejson", "", "with -socket -route: write the routing snapshot as JSON to this file")
	routeCompare := flag.String("routecompare", "", "with -socket -route: compare against this baseline JSON and exit nonzero on >25% routed tx/s regression or >25% path-find p99 regression")
	overdrive := flag.Int("overdrive", 0, "with -socket: run the overload benchmark at this offered-load multiple (e.g. 10) instead of channel scaling")
	overloadJSON := flag.String("overloadjson", "", "with -socket -overdrive: write the overload snapshot as JSON to this file")
	overloadCompare := flag.String("overloadcompare", "", "with -socket -overdrive: compare against this baseline JSON and exit nonzero on a flat-p99 violation or >25% admitted tx/s regression")
	flag.Parse()

	if *durable {
		if !*socket {
			log.Fatal("-durable requires -socket")
		}
		if *committee != "" {
			log.Fatal("-durable and -committee are separate benchmarks; pick one")
		}
		if *quick {
			*socketPay = 4000
		}
		snap, err := runDurSuite(*socketPay, *batch, *sreps)
		if err != nil {
			log.Fatal(err)
		}
		if *durJSON != "" {
			if err := writeDurJSON(*durJSON, snap); err != nil {
				log.Fatal(err)
			}
		}
		if *durCompare != "" {
			if err := compareDurBaseline(*durCompare, snap); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	if *durJSON != "" || *durCompare != "" {
		log.Fatal("-durjson/-durcompare require -socket -durable")
	}

	if *routeBench {
		if !*socket {
			log.Fatal("-route requires -socket")
		}
		if *committee != "" {
			log.Fatal("-route and -committee are separate benchmarks; pick one")
		}
		if *quick {
			*routePay = 100
			*routeFinds = 500
		}
		snap, err := runRouteSuite(*routePay, *routeFinds, *sreps)
		if err != nil {
			log.Fatal(err)
		}
		if *routeJSON != "" {
			if err := writeRouteJSON(*routeJSON, snap); err != nil {
				log.Fatal(err)
			}
		}
		if *routeCompare != "" {
			if err := compareRouteBaseline(*routeCompare, snap); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	if *routeJSON != "" || *routeCompare != "" {
		log.Fatal("-routejson/-routecompare require -socket -route")
	}

	if *overdrive > 0 {
		if !*socket {
			log.Fatal("-overdrive requires -socket")
		}
		if *committee != "" {
			log.Fatal("-overdrive and -committee are separate benchmarks; pick one")
		}
		if *quick {
			*socketPay = 4000
		}
		// Tail percentiles need far more steady state than a throughput
		// mean: 10x the socket bench's payment count keeps the p99-ratio
		// gate out of warmup/GC noise while still finishing in seconds.
		snap, err := runOverloadSuite(*socketPay*10, *batch, *overdrive, *sreps)
		if err != nil {
			log.Fatal(err)
		}
		if *overloadJSON != "" {
			if err := writeOverloadJSON(*overloadJSON, snap); err != nil {
				log.Fatal(err)
			}
		}
		if *overloadCompare != "" {
			if err := compareOverloadBaseline(*overloadCompare, snap); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	if *overloadJSON != "" || *overloadCompare != "" {
		log.Fatal("-overloadjson/-overloadcompare require -socket -overdrive")
	}

	if *socket && *committee != "" {
		if *socketJSON != "" || *socketCompare != "" {
			log.Fatal("-socketjson/-socketcompare are for the channel-scaling benchmark; use -repljson/-replcompare with -committee")
		}
		if *quick {
			*socketPay = 4000
		}
		snap, err := runReplSuite(*committee, *socketPay, *batch, *sreps)
		if err != nil {
			log.Fatal(err)
		}
		if *replJSON != "" {
			if err := writeReplJSON(*replJSON, snap); err != nil {
				log.Fatal(err)
			}
		}
		if *replCompare != "" {
			if err := compareReplBaseline(*replCompare, snap); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	if *committee != "" || *replJSON != "" || *replCompare != "" {
		log.Fatal("-committee/-repljson/-replcompare require -socket (and -committee for the JSON flags)")
	}

	if *socket {
		if *quick {
			*socketPay = 4000
		}
		snap, err := runSocketSuite(*channels, *socketPay, *batch, *sreps)
		if err != nil {
			log.Fatal(err)
		}
		if *socketJSON != "" {
			if err := writeSocketJSON(*socketJSON, snap); err != nil {
				log.Fatal(err)
			}
		}
		if *socketCompare != "" {
			if err := compareSocketBaseline(*socketCompare, snap); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	if *socketJSON != "" || *socketCompare != "" {
		log.Fatal("-socketjson/-socketcompare require -socket")
	}

	if *benchJSON != "" {
		snap, err := measureBench()
		if err != nil {
			log.Fatal(err)
		}
		if err := writeBenchJSON(*benchJSON, snap); err != nil {
			log.Fatal(err)
		}
		if *compare != "" {
			if err := compareBaseline(*compare, snap); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	if *compare != "" {
		log.Fatal("-compare requires -benchjson")
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*runFlag, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	start := time.Now()
	if selected("table1") {
		section("Table 1")
		rows, err := harness.RunTable1()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(harness.FormatTable1(rows))
	}
	if selected("table2") {
		section("Table 2")
		rows, err := harness.RunTable2()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(harness.FormatTable2(rows))
	}
	if selected("fig4") {
		section("Figure 4")
		maxHops := 11
		if *quick {
			maxHops = 6
		}
		points, err := harness.RunFigure4(maxHops)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(harness.FormatFigure4(points))
	}
	if selected("fig6") {
		section("Figure 6")
		machines := []int{5, 10, 15, 20, 25, 30}
		perMachine := 3000
		if *quick {
			machines = []int{5, 10, 15}
			perMachine = 1500
		}
		points, err := harness.RunFigure6(machines, []int{1, 2, 3}, perMachine)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(harness.FormatFigure6(points))
	}
	if selected("table3") {
		section("Table 3")
		per := 30
		if *quick {
			per = 15
		}
		rows, err := harness.RunTable3(per)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(harness.FormatTable3(rows))
	}
	if selected("fig7") {
		section("Figure 7")
		per := 30
		gs := []int{0, 1, 2, 4}
		if *quick {
			per = 15
			gs = []int{0, 2}
		}
		points, err := harness.RunFigure7(gs, per)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(harness.FormatFigure7(points))
	}
	if selected("table4") {
		section("Table 4")
		fmt.Print(harness.FormatTable4())
	}
	fmt.Printf("\ncompleted in %v (wall clock)\n", time.Since(start).Round(time.Millisecond))
}

func section(title string) {
	fmt.Printf("\n================ %s ================\n", title)
}

// paymentBench is the wall-clock microbenchmark of the simulated
// payment path (mirrors BenchmarkPaymentChannel): one payment through
// two enclaves end to end, including session freshness tokens.
func paymentBench(b *testing.B) {
	net, err := teechain.NewNetwork()
	if err != nil {
		b.Fatal(err)
	}
	alice, _ := net.AddNode("alice", teechain.SiteUK, teechain.NodeOptions{})
	bob, _ := net.AddNode("bob", teechain.SiteUK, teechain.NodeOptions{})
	ch, err := net.OpenChannel(alice, bob, teechain.Amount(b.N)+1_000_000, 0)
	if err != nil {
		b.Fatal(err)
	}
	acked := 0
	done := func(bool, time.Duration, string) { acked++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := alice.Pay(ch, 1, done); err != nil {
			b.Fatal(err)
		}
		net.Run()
	}
	if acked != b.N {
		b.Fatalf("acked %d of %d", acked, b.N)
	}
}

// simulatedChannelThroughput measures single-channel capacity in
// virtual time: a closed loop with a deep window over the US–UK
// channel, acknowledged payments per simulated second after warmup.
func simulatedChannelThroughput(total int) (float64, error) {
	net, err := teechain.NewNetwork()
	if err != nil {
		return 0, err
	}
	alice, _ := net.AddNode("alice", teechain.SiteUS, teechain.NodeOptions{})
	bob, _ := net.AddNode("bob", teechain.SiteUK, teechain.NodeOptions{})
	ch, err := net.OpenChannel(alice, bob, teechain.Amount(total)+1_000_000, 0)
	if err != nil {
		return 0, err
	}
	// The window must out-run the bandwidth-delay product of the
	// channel (capacity ~130 k tx/s × 90 ms RTT ≈ 12 k in flight) so
	// the measurement reads enclave capacity, not the round trip.
	const window = 16_384
	warmup := total / 10
	issued, acked, failed := 0, 0, 0
	var tWarm, tEnd time.Duration
	var issue func(k int)
	done := func(ok bool, _ time.Duration, _ string) {
		if !ok {
			failed++
		}
		acked++
		if acked == warmup {
			tWarm = net.Now()
		}
		if acked == total {
			tEnd = net.Now()
		}
		issue(1)
	}
	issue = func(k int) {
		for i := 0; i < k && issued < total; i++ {
			issued++
			if err := alice.Pay(ch, 1, done); err != nil {
				done(false, 0, err.Error())
			}
		}
	}
	issue(window)
	if err := net.Until(func() bool { return acked >= total }); err != nil {
		return 0, err
	}
	if failed > 0 {
		return 0, fmt.Errorf("throughput measurement: %d of %d payments failed", failed, total)
	}
	elapsed := (tEnd - tWarm).Seconds()
	if elapsed <= 0 {
		return 0, nil
	}
	return float64(total-warmup) / elapsed, nil
}

// benchSnapshot is the payment-path perf record tracked across PRs:
// wall-clock simulator speed AND the simulated protocol metric, which
// must not drift.
type benchSnapshot struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SimTxPerSec float64 `json:"sim_tx_per_s"`
	Payments    int     `json:"bench_payments"`
}

func measureBench() (*benchSnapshot, error) {
	r := testing.Benchmark(paymentBench)
	tput, err := simulatedChannelThroughput(100_000)
	if err != nil {
		return nil, err
	}
	return &benchSnapshot{
		NsPerOp:     int64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		SimTxPerSec: tput,
		Payments:    r.N,
	}, nil
}

func writeBenchJSON(path string, snap *benchSnapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d ns/op, %d allocs/op, %.0f simulated tx/s\n",
		path, snap.NsPerOp, snap.AllocsPerOp, snap.SimTxPerSec)
	return nil
}

// compareBaseline is the CI perf regression gate: the fresh snapshot
// may not regress ns/op by more than 25% or add a single allocation on
// the payment hot path.
func compareBaseline(path string, fresh *benchSnapshot) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base benchSnapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	fmt.Printf("baseline %s: %d ns/op, %d allocs/op, %.0f simulated tx/s\n",
		path, base.NsPerOp, base.AllocsPerOp, base.SimTxPerSec)
	limit := base.NsPerOp + base.NsPerOp/4
	if fresh.NsPerOp > limit {
		return fmt.Errorf("perf regression: %d ns/op exceeds baseline %d by more than 25%% (limit %d)",
			fresh.NsPerOp, base.NsPerOp, limit)
	}
	if fresh.AllocsPerOp > base.AllocsPerOp {
		return fmt.Errorf("alloc regression: %d allocs/op, baseline %d (no increase allowed)",
			fresh.AllocsPerOp, base.AllocsPerOp)
	}
	fmt.Printf("perf gate passed: ns/op %d <= %d, allocs/op %d <= %d\n",
		fresh.NsPerOp, limit, fresh.AllocsPerOp, base.AllocsPerOp)
	return nil
}
