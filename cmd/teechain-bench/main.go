// teechain-bench regenerates every table and figure of the paper's
// evaluation (§7) from this implementation, printing paper-style
// output. See EXPERIMENTS.md for the recorded paper-vs-measured
// comparison.
//
// Usage:
//
//	teechain-bench            # run everything (several minutes)
//	teechain-bench -run table1,fig4
//	teechain-bench -quick     # reduced measurement lengths
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"
)

import "teechain/internal/harness"

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiments: table1,table2,table3,table4,fig4,fig6,fig7")
	quick := flag.Bool("quick", false, "reduced measurement lengths")
	flag.Parse()

	want := map[string]bool{}
	for _, name := range strings.Split(*runFlag, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	start := time.Now()
	if selected("table1") {
		section("Table 1")
		rows, err := harness.RunTable1()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(harness.FormatTable1(rows))
	}
	if selected("table2") {
		section("Table 2")
		rows, err := harness.RunTable2()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(harness.FormatTable2(rows))
	}
	if selected("fig4") {
		section("Figure 4")
		maxHops := 11
		if *quick {
			maxHops = 6
		}
		points, err := harness.RunFigure4(maxHops)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(harness.FormatFigure4(points))
	}
	if selected("fig6") {
		section("Figure 6")
		machines := []int{5, 10, 15, 20, 25, 30}
		perMachine := 3000
		if *quick {
			machines = []int{5, 10, 15}
			perMachine = 1500
		}
		points, err := harness.RunFigure6(machines, []int{1, 2, 3}, perMachine)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(harness.FormatFigure6(points))
	}
	if selected("table3") {
		section("Table 3")
		per := 30
		if *quick {
			per = 15
		}
		rows, err := harness.RunTable3(per)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(harness.FormatTable3(rows))
	}
	if selected("fig7") {
		section("Figure 7")
		per := 30
		gs := []int{0, 1, 2, 4}
		if *quick {
			per = 15
			gs = []int{0, 2}
		}
		points, err := harness.RunFigure7(gs, per)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(harness.FormatFigure7(points))
	}
	if selected("table4") {
		section("Table 4")
		fmt.Print(harness.FormatTable4())
	}
	fmt.Printf("\ncompleted in %v (wall clock)\n", time.Since(start).Round(time.Millisecond))
}

func section(title string) {
	fmt.Printf("\n================ %s ================\n", title)
}
