package main

// The routing benchmark measures the two costs the routing subsystem
// adds on top of raw channels: what a fee-aware pathfinding query costs
// against a converged gossip graph (p50/p99 over thousands of random
// src→dst queries), and what routed multihop throughput looks like when
// every sender names only a target identity and the graph supplies
// paths, fee schedules, and repathing (all payments concurrently in
// flight over a seeded random topology). The committed
// BENCH_routing.json records both and CI gates on >25% regression on
// routed tx/s and on path-find p99.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"teechain/internal/chain"
	"teechain/internal/harness"
	"teechain/internal/route"
	"teechain/internal/transport"
)

// The benchmark topology: small enough to deploy in seconds over real
// TCP, large enough that paths have real length (mean > 2 hops) and the
// pathfinder has alternatives to rank by fee.
const (
	routeBenchSeed    = 11
	routeBenchNodes   = 16
	routeBenchExtra   = 12 // chords beyond the funding cycle
	routeBenchDeposit = chain.Amount(50_000)
)

// routeSnapshot is the routing-bench record tracked across PRs.
type routeSnapshot struct {
	GoMaxProcs int     `json:"go_max_procs"`
	Seed       int64   `json:"seed"`
	Nodes      int     `json:"nodes"`
	Channels   int     `json:"channels"`
	Payments   int     `json:"payments"`
	PathFinds  int     `json:"path_finds"`
	TxPerSec   float64 `json:"routed_tx_per_s"`
	MeanHops   float64 `json:"mean_hops"`
	PathP50Us  float64 `json:"path_find_p50_us"`
	PathP99Us  float64 `json:"path_find_p99_us"`
}

// runRouteBench deploys the seeded topology over real sockets, waits
// for every node's gossip graph to converge, then measures pathfinding
// latency on the quiet graph and routed-payment throughput with all
// payments concurrently in flight. Transient collisions retry inside
// PayRouted and (with a jittered pause) here, exactly as a real caller
// would; every payment must land for the measurement to count.
func runRouteBench(payments, pathfinds int) (*routeSnapshot, error) {
	snap := &routeSnapshot{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       routeBenchSeed,
		Nodes:      routeBenchNodes,
		Payments:   payments,
		PathFinds:  pathfinds,
	}
	rn := harness.BuildRoutedNet(routeBenchSeed, routeBenchNodes, routeBenchExtra, routeBenchDeposit)
	snap.Channels = len(rn.Channels)
	fees := rn.FeePolicies()
	c, err := harness.NewClusterWith(func(cfg *transport.Config) {
		fee := fees[cfg.Name]
		cfg.FeeBase = fee.Base
		cfg.FeeRatePPM = fee.RatePPM
	}, rn.Nodes...)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if _, err := rn.Deploy(c); err != nil {
		return nil, err
	}
	if err := rn.AwaitGraphs(c, harness.ClusterTimeout); err != nil {
		return nil, err
	}

	// Pathfinding cost on the quiet, converged graph: random ordered
	// pairs, so queries span the whole hop-length distribution. The
	// cycle construction guarantees every pair is routable.
	rng := rand.New(rand.NewSource(routeBenchSeed + 3))
	lats := make([]time.Duration, 0, pathfinds)
	for i := 0; i < pathfinds; i++ {
		si := rng.Intn(routeBenchNodes)
		di := rng.Intn(routeBenchNodes)
		for di == si {
			di = rng.Intn(routeBenchNodes)
		}
		h := c.Host(rn.Nodes[si])
		dst := c.Identity(rn.Nodes[di])
		t0 := time.Now()
		if _, err := h.FindRoute(dst, chain.Amount(1+rng.Intn(5))); err != nil {
			return nil, fmt.Errorf("path find %s->%s: %w", rn.Nodes[si], rn.Nodes[di], err)
		}
		lats = append(lats, time.Since(t0))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	snap.PathP50Us = float64(lats[len(lats)/2].Microseconds())
	snap.PathP99Us = float64(lats[len(lats)*99/100].Microseconds())

	// Routed throughput: every payment in flight at once, each naming
	// only its target identity.
	type job struct {
		src, dst string
		amount   chain.Amount
	}
	jobs := make([]job, payments)
	for i := range jobs {
		si := rng.Intn(routeBenchNodes)
		di := rng.Intn(routeBenchNodes)
		for di == si {
			di = rng.Intn(routeBenchNodes)
		}
		jobs[i] = job{src: rn.Nodes[si], dst: rn.Nodes[di], amount: chain.Amount(1 + rng.Intn(5))}
	}
	routes := make([]route.Route, payments)
	errs := make([]error, payments)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng2 := rand.New(rand.NewSource(routeBenchSeed + 100 + int64(i)))
			j := jobs[i]
			dst := c.Identity(j.dst)
			deadline := time.Now().Add(harness.ClusterTimeout)
			for {
				r, err := c.Host(j.src).PayRouted(dst, j.amount, harness.ClusterTimeout)
				if err == nil {
					routes[i] = r
					return
				}
				if time.Now().After(deadline) {
					errs[i] = err
					return
				}
				time.Sleep(time.Duration(20+rng2.Intn(40)) * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	hopTotal := 0
	for i := range jobs {
		if errs[i] != nil {
			return nil, fmt.Errorf("routed payment %d (%s->%s, %d): %w",
				i, jobs[i].src, jobs[i].dst, jobs[i].amount, errs[i])
		}
		hopTotal += len(routes[i].Hops)
	}
	snap.TxPerSec = float64(payments) / elapsed.Seconds()
	snap.MeanHops = float64(hopTotal) / float64(payments)
	return snap, nil
}

func runRouteSuite(payments, pathfinds, reps int) (*routeSnapshot, error) {
	if reps < 1 {
		reps = 1
	}
	fmt.Printf("routing bench: GOMAXPROCS=%d, %d nodes, %d payments/run, %d path finds, best of %d\n",
		runtime.GOMAXPROCS(0), routeBenchNodes, payments, pathfinds, reps)
	var best *routeSnapshot
	for rep := 0; rep < reps; rep++ {
		snap, err := runRouteBench(payments, pathfinds)
		if err != nil {
			return nil, fmt.Errorf("routing bench: %w", err)
		}
		if best == nil || snap.TxPerSec > best.TxPerSec {
			best = snap
		}
	}
	fmt.Printf("%8s %10s %12s %14s %14s\n", "nodes", "channels", "routed tx/s", "pathfind p50", "pathfind p99")
	fmt.Printf("%8d %10d %12.0f %12.0fus %12.0fus\n",
		best.Nodes, best.Channels, best.TxPerSec, best.PathP50Us, best.PathP99Us)
	fmt.Printf("mean path length %.2f hops\n", best.MeanHops)
	return best, nil
}

func writeRouteJSON(path string, snap *routeSnapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// compareRouteBaseline is the CI gate for the routing subsystem: routed
// throughput may not fall more than 25% below the committed baseline,
// and pathfinding p99 may not rise more than 25% above it.
func compareRouteBaseline(path string, fresh *routeSnapshot) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading routing baseline: %w", err)
	}
	var base routeSnapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing routing baseline %s: %w", path, err)
	}
	floor := base.TxPerSec * 0.75
	if fresh.TxPerSec < floor {
		return fmt.Errorf("routed perf regression: %.0f tx/s is more than 25%% below baseline %.0f (floor %.0f)",
			fresh.TxPerSec, base.TxPerSec, floor)
	}
	ceiling := base.PathP99Us * 1.25
	if fresh.PathP99Us > ceiling {
		return fmt.Errorf("pathfinding regression: p99 %.0fus is more than 25%% above baseline %.0fus (ceiling %.0fus)",
			fresh.PathP99Us, base.PathP99Us, ceiling)
	}
	fmt.Printf("routing perf gate passed: %.0f tx/s >= floor %.0f, pathfind p99 %.0fus <= ceiling %.0fus\n",
		fresh.TxPerSec, floor, fresh.PathP99Us, ceiling)
	return nil
}
