package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"teechain/internal/api/client"
	"teechain/internal/chain"
	"teechain/internal/harness"
	"teechain/internal/transport"
	"teechain/internal/wire"
)

// The overload benchmark measures graceful degradation on the
// deployment path: one real-TCP sender→receiver pair whose host runs
// with a deliberately small admission budget, first driven by a
// self-clocked load that fits inside the budget (the baseline), then by
// an open-loop flood offering `overdrive` times that load. Every shed
// request is retried through the SDK's typed predicates
// (client.IsOverloaded / client.RetryAfter), so the run measures what a
// well-behaved client experiences during overload: admitted throughput
// and admitted-batch latency, plus how often it was pushed back.
//
// The committed BENCH_overload.json is the CI gate baseline (see
// compareOverloadBaseline). The gate enforces the two properties that
// make admission control worth having:
//
//   - flat p99: admitted-batch p99 latency under overdrive stays within
//     3x the baseline p99 — shedding keeps the queue short instead of
//     letting latency grow with offered load;
//   - sustained goodput: admitted tx/s under overdrive may not fall
//     more than 25% below the committed baseline's overdrive figure.

// Budget and load shape. The baseline's closed loop keeps exactly the
// per-channel budget in flight (overloadBaseWorkers × the 64-payment
// batch = overloadBudgetPerChannel) — the load the operator sized the
// budget for. Overdrive multiplies the worker count, so the offered
// in-flight volume far exceeds the budget and admission genuinely
// sheds, while the ADMITTED queue stays pinned at the same engineered
// depth as the baseline — which is precisely why p99 should stay flat.
const (
	overloadBudgetPerChannel = 512
	overloadBudgetTotal      = 4096
	overloadBaseWorkers      = 8
)

// overloadResult is the measurement for one load level.
type overloadResult struct {
	Workers          int     `json:"workers"`
	Payments         int     `json:"payments"`
	AdmittedTxPerSec float64 `json:"admitted_tx_per_s"`
	P50Us            float64 `json:"p50_us"`
	P99Us            float64 `json:"p99_us"`
	Rejects          uint64  `json:"rejects"`
	RejectRate       float64 `json:"reject_rate"`
}

// overloadSnapshot is the full overload-bench record tracked across
// PRs: the baseline and overdrive runs of the winning repetition, as a
// coherent pair.
type overloadSnapshot struct {
	GoMaxProcs       int            `json:"go_max_procs"`
	Batch            int            `json:"batch"`
	PerRun           int            `json:"payments_per_run"`
	Overdrive        int            `json:"overdrive"`
	BudgetPerChannel int            `json:"budget_per_channel"`
	Base             overloadResult `json:"base"`
	Over             overloadResult `json:"over"`
	P99Ratio         float64        `json:"p99_ratio"`
}

// runOverloadBench drives one fresh two-node TCP cluster with `workers`
// concurrent closed loops, each issuing one batch at a time and
// retrying shed batches until admitted. Latency samples cover admitted
// batches only, stamped from the attempt that was admitted — a shed
// attempt costs a reject counter and a backoff sleep, not a latency
// outlier.
func runOverloadBench(payments, batch, workers int) (overloadResult, error) {
	res := overloadResult{Workers: workers, Payments: payments}
	c, err := harness.NewClusterWith(func(cfg *transport.Config) {
		cfg.MaxInflightPerChannel = overloadBudgetPerChannel
		cfg.MaxInflightTotal = overloadBudgetTotal
	}, "s0", "r0")
	if err != nil {
		return res, err
	}
	defer c.Close()
	if err := c.Connect("s0", "r0"); err != nil {
		return res, err
	}
	id, err := c.OpenChannel("s0", "r0", chain.Amount(payments)+1)
	if err != nil {
		return res, err
	}
	chID := wire.ChannelID(id)
	sender := c.Client("s0")
	sender.SetTimeout(socketBenchTimeout)

	// Workers claim payments from a shared counter so the total is
	// exact no matter how the schedule interleaves them.
	var next int64
	claim := func() int {
		n := atomic.AddInt64(&next, int64(batch))
		over := n - int64(payments)
		if over >= int64(batch) {
			return 0
		}
		if over > 0 {
			return batch - int(over)
		}
		return batch
	}

	var rejects atomic.Uint64
	var batches atomic.Uint64
	latCh := make(chan []time.Duration, workers)
	errCh := make(chan error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		go func() {
			var lats []time.Duration
			warmup := true
			amounts := make([]chain.Amount, batch)
			for i := range amounts {
				amounts[i] = 1
			}
			// The SDK retrier sleeps the server's RetryAfterMillis hint
			// with jitter, so shed workers don't re-flood in lockstep.
			// Attempts is effectively unbounded: the bench retries until
			// admitted, and rejection-before-debit makes that exact.
			retry := client.Retrier{Attempts: 1 << 20}
			for {
				n := claim()
				if n == 0 {
					break
				}
				var t0 time.Time
				err := retry.Do(func() error {
					t0 = time.Now()
					h, err := sender.PayBatchAsync(chID, amounts[:n])
					if err == nil {
						err = h.Wait()
					}
					if client.IsOverloaded(err) {
						rejects.Add(1)
					}
					return err
				})
				if err != nil {
					errCh <- err
					latCh <- lats
					return
				}
				// Each worker's first admitted batch pays one-time costs
				// (lane warmup, the acker ramping from target 1) that
				// would otherwise own the baseline tail. The recorded
				// latency spans only the admitted attempt: a shed attempt
				// costs a reject counter and a backoff sleep, not a
				// latency outlier.
				if warmup {
					warmup = false
				} else {
					lats = append(lats, time.Since(t0))
				}
				batches.Add(1)
			}
			latCh <- lats
		}()
	}

	var lats []time.Duration
	for w := 0; w < workers; w++ {
		lats = append(lats, <-latCh...)
	}
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return res, err
	default:
	}
	res.AdmittedTxPerSec = float64(payments) / elapsed.Seconds()
	res.Rejects = rejects.Load()
	if attempts := res.Rejects + batches.Load(); attempts > 0 {
		res.RejectRate = float64(res.Rejects) / float64(attempts)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		res.P50Us = float64(lats[len(lats)/2].Microseconds())
		res.P99Us = float64(lats[len(lats)*99/100].Microseconds())
	}
	return res, nil
}

// runOverloadSuite measures a baseline/overdrive pair per repetition.
// Each gate criterion keeps its own best-of-reps value — the standard
// defense against one OS scheduling stall poisoning a measurement on a
// loaded machine: Base/Over record the repetition with the best
// overdrive admitted tx/s, and P99Ratio is the minimum across
// repetitions, where each repetition's ratio compares its own baseline
// against its own overdrive run (the two halves of a rep run
// back-to-back under the same machine-load regime, so the ratio is
// internally coherent even when absolute latencies drift between reps).
func runOverloadSuite(payments, batch, overdrive, reps int) (*overloadSnapshot, error) {
	if overdrive < 2 {
		return nil, fmt.Errorf("overdrive must be >= 2 (got %d)", overdrive)
	}
	if reps < 1 {
		reps = 1
	}
	snap := &overloadSnapshot{
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		Batch:            batch,
		PerRun:           payments,
		Overdrive:        overdrive,
		BudgetPerChannel: overloadBudgetPerChannel,
	}
	fmt.Printf("overload bench: GOMAXPROCS=%d, %d payments/run, batch=%d, budget=%d/channel, overdrive=%dx, best of %d\n",
		snap.GoMaxProcs, payments, batch, overloadBudgetPerChannel, overdrive, reps)
	fmt.Printf("%-10s %8s %12s %10s %10s %10s %8s\n",
		"load", "workers", "adm tx/s", "p50(us)", "p99(us)", "rejects", "shed%")
	show := func(load string, r overloadResult) {
		fmt.Printf("%-10s %8d %12.0f %10.0f %10.0f %10d %7.1f%%\n",
			load, r.Workers, r.AdmittedTxPerSec, r.P50Us, r.P99Us, r.Rejects, 100*r.RejectRate)
	}
	bestTx := -1.0
	bestRatio := math.MaxFloat64
	for rep := 0; rep < reps; rep++ {
		base, err := runOverloadBench(payments, batch, overloadBaseWorkers)
		if err != nil {
			return nil, fmt.Errorf("overload baseline: %w", err)
		}
		over, err := runOverloadBench(payments, batch, overloadBaseWorkers*overdrive)
		if err != nil {
			return nil, fmt.Errorf("overload %dx: %w", overdrive, err)
		}
		if over.Rejects == 0 {
			return nil, fmt.Errorf("overload %dx run shed nothing: the offered load never tripped the %d-payment budget, so the measurement says nothing about degradation",
				overdrive, overloadBudgetPerChannel)
		}
		if over.AdmittedTxPerSec > bestTx {
			bestTx = over.AdmittedTxPerSec
			snap.Base, snap.Over = base, over
		}
		if base.P99Us > 0 {
			if ratio := over.P99Us / base.P99Us; ratio < bestRatio {
				bestRatio = ratio
			}
		}
	}
	show("1x", snap.Base)
	show(fmt.Sprintf("%dx", overdrive), snap.Over)
	if bestRatio < math.MaxFloat64 {
		snap.P99Ratio = bestRatio
	}
	fmt.Printf("p99 ratio %dx/1x: %.2f (flat-p99 criterion: <= 3.0)\n", overdrive, snap.P99Ratio)
	return snap, nil
}

func writeOverloadJSON(path string, snap *overloadSnapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// compareOverloadBaseline is the CI gate for graceful degradation:
// the fresh run must keep p99 flat (admitted-batch p99 under overdrive
// within 3x of its own baseline) and may not regress overdrive
// admitted tx/s by more than 25% against the committed baseline.
func compareOverloadBaseline(path string, fresh *overloadSnapshot) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading overload baseline: %w", err)
	}
	var base overloadSnapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing overload baseline %s: %w", path, err)
	}
	if fresh.P99Ratio > 3.0 {
		return fmt.Errorf("flat-p99 violation: admitted p99 at %dx offered load is %.2fx the baseline p99 (max 3.0) — shedding is no longer bounding the queue",
			fresh.Overdrive, fresh.P99Ratio)
	}
	floor := base.Over.AdmittedTxPerSec * 0.75
	if fresh.Over.AdmittedTxPerSec < floor {
		return fmt.Errorf("overload perf regression: %.0f admitted tx/s at %dx is more than 25%% below baseline %.0f (floor %.0f)",
			fresh.Over.AdmittedTxPerSec, fresh.Overdrive, base.Over.AdmittedTxPerSec, floor)
	}
	fmt.Printf("overload gate: p99 ratio %.2f <= 3.0, admitted %.0f tx/s >= floor %.0f (baseline %.0f)\n",
		fresh.P99Ratio, fresh.Over.AdmittedTxPerSec, floor, base.Over.AdmittedTxPerSec)
	fmt.Println("overload gate passed")
	return nil
}
