package main

// The durability benchmark measures what crash safety costs on the
// payment fast path: the same single-channel batched-payment pump as
// the socket benchmark, run twice — once in memory and once with the
// sender durable (group-committed WAL + sealed snapshots under a
// temporary data directory). Because the WAL rides the lane fast path
// (records seal and fsync off-path, acks release on the group commit),
// durable throughput should stay within a small factor of in-memory;
// the committed BENCH_durability.json records both and CI gates on
// >25% tx/s regression and on the durable/in-memory ratio collapsing
// below the 1/4 acceptance floor.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"teechain/internal/api/client"
	"teechain/internal/chain"
	"teechain/internal/harness"
	"teechain/internal/transport"
	"teechain/internal/wire"
)

// durResult is the measurement for one mode (durable or in-memory).
type durResult struct {
	Durable  bool    `json:"durable"`
	Payments int     `json:"payments"`
	TxPerSec float64 `json:"tx_per_s"`
	P50Us    float64 `json:"p50_us"`
	P99Us    float64 `json:"p99_us"`
	// Fsyncs and OpsLogged record the group-commit shape of the durable
	// run (zero for in-memory): far fewer fsyncs than ops is the whole
	// point of the batched flusher.
	Fsyncs    uint64 `json:"fsyncs,omitempty"`
	OpsLogged uint64 `json:"ops_logged,omitempty"`
}

// durSnapshot is the durability-bench record tracked across PRs.
type durSnapshot struct {
	GoMaxProcs int       `json:"go_max_procs"`
	Batch      int       `json:"batch"`
	PerRun     int       `json:"payments_per_run"`
	InMemory   durResult `json:"in_memory"`
	Durable    durResult `json:"durable"`
	// Ratio is durable tx/s over in-memory tx/s; the acceptance floor
	// is 0.25 (durability may cost at most 4x).
	Ratio float64 `json:"durable_over_in_memory"`
}

// runDurBench pumps batched payments over one funded sender->receiver
// channel and measures acked throughput, with the sender durable or
// not. Every ack in durable mode has cleared an fsync: the WAL holds
// back PayBatch effects until its group commit, so the measurement is
// end-to-end crash-safe throughput, not buffered-write throughput.
func runDurBench(payments, batch, window int, durable bool) (durResult, error) {
	res := durResult{Durable: durable, Payments: payments}
	var mut func(*transport.Config)
	if durable {
		dir, err := os.MkdirTemp("", "teechain-durbench-")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(dir)
		mut = func(cfg *transport.Config) {
			if cfg.Name == "s0" {
				cfg.DataDir = dir
			}
		}
	}
	c, err := harness.NewClusterWith(mut, "s0", "r0")
	if err != nil {
		return res, err
	}
	defer c.Close()
	if err := c.Connect("s0", "r0"); err != nil {
		return res, err
	}
	id, err := c.OpenChannel("s0", "r0", chain.Amount(payments)+1)
	if err != nil {
		return res, err
	}
	chID := wire.ChannelID(id)
	sender := c.Client("s0")
	sender.SetTimeout(socketBenchTimeout)

	type sample struct {
		h  *client.Pending
		t0 time.Time
	}
	inflight := window / batch
	if inflight < 1 {
		inflight = 1
	}
	entries := make(chan sample, inflight)
	latCh := make(chan []time.Duration, 1)
	errCh := make(chan error, 2)
	go func() {
		lats := make([]time.Duration, 0, payments/batch+1)
		for e := range entries {
			if err := e.h.Wait(); err != nil {
				errCh <- err
				break
			}
			lats = append(lats, time.Since(e.t0))
		}
		latCh <- lats
	}()
	start := time.Now()
	amounts := make([]chain.Amount, 0, batch)
	issued := 0
	for issued < payments {
		n := min(batch, payments-issued)
		amounts = amounts[:0]
		for i := 0; i < n; i++ {
			amounts = append(amounts, 1)
		}
		t0 := time.Now()
		var h *client.Pending
		var err error
		if n == 1 {
			h, err = sender.PayAsync(chID, 1, 1)
		} else {
			h, err = sender.PayBatchAsync(chID, amounts)
		}
		if err != nil {
			close(entries)
			return res, err
		}
		issued += n
		entries <- sample{h: h, t0: t0}
	}
	close(entries)
	lats := <-latCh
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return res, err
	default:
	}
	st, err := sender.Stats()
	if err != nil {
		return res, err
	}
	if st.Host.PaymentsWide != 0 {
		return res, fmt.Errorf("%d payments fell off the lane fast path", st.Host.PaymentsWide)
	}
	if durable {
		ws, err := sender.WalStats()
		if err != nil {
			return res, err
		}
		res.Fsyncs = ws.Fsyncs
		res.OpsLogged = ws.OpsLogged
	}
	res.TxPerSec = float64(payments) / elapsed.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		res.P50Us = float64(lats[len(lats)/2].Microseconds())
		res.P99Us = float64(lats[len(lats)*99/100].Microseconds())
	}
	return res, nil
}

func runDurSuite(payments, batch, reps int) (*durSnapshot, error) {
	if reps < 1 {
		reps = 1
	}
	window := 4 * batch
	snap := &durSnapshot{GoMaxProcs: runtime.GOMAXPROCS(0), Batch: batch, PerRun: payments}
	fmt.Printf("durability bench: GOMAXPROCS=%d, %d payments/run, batch=%d, window=%d, best of %d\n",
		snap.GoMaxProcs, payments, batch, window, reps)
	for _, durable := range []bool{false, true} {
		var best durResult
		for rep := 0; rep < reps; rep++ {
			r, err := runDurBench(payments, batch, window, durable)
			if err != nil {
				return nil, fmt.Errorf("durability bench (durable=%t): %w", durable, err)
			}
			if r.TxPerSec > best.TxPerSec {
				best = r
			}
		}
		if durable {
			snap.Durable = best
		} else {
			snap.InMemory = best
		}
	}
	if snap.InMemory.TxPerSec > 0 {
		snap.Ratio = snap.Durable.TxPerSec / snap.InMemory.TxPerSec
	}
	fmt.Printf("%-10s %12s %10s %10s %10s %10s\n", "mode", "tx/s", "p50(us)", "p99(us)", "fsyncs", "ops")
	fmt.Printf("%-10s %12.0f %10.0f %10.0f %10s %10s\n", "in-memory",
		snap.InMemory.TxPerSec, snap.InMemory.P50Us, snap.InMemory.P99Us, "-", "-")
	fmt.Printf("%-10s %12.0f %10.0f %10.0f %10d %10d\n", "durable",
		snap.Durable.TxPerSec, snap.Durable.P50Us, snap.Durable.P99Us,
		snap.Durable.Fsyncs, snap.Durable.OpsLogged)
	fmt.Printf("durable/in-memory: %.2fx\n", snap.Ratio)
	return snap, nil
}

func writeDurJSON(path string, snap *durSnapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// compareDurBaseline is the CI gate for the durable payment path:
// durable tx/s may not fall more than 25% below the committed
// baseline, and the durable/in-memory ratio may not collapse below the
// 1/4 acceptance floor.
func compareDurBaseline(path string, fresh *durSnapshot) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading durability baseline: %w", err)
	}
	var base durSnapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing durability baseline %s: %w", path, err)
	}
	floor := base.Durable.TxPerSec * 0.75
	if fresh.Durable.TxPerSec < floor {
		return fmt.Errorf("durable perf regression: %.0f tx/s is more than 25%% below baseline %.0f (floor %.0f)",
			fresh.Durable.TxPerSec, base.Durable.TxPerSec, floor)
	}
	if fresh.Ratio < 0.25 {
		return fmt.Errorf("durable/in-memory ratio collapsed: %.2f, acceptance floor 0.25", fresh.Ratio)
	}
	if fresh.Durable.Fsyncs == 0 || fresh.Durable.Fsyncs >= fresh.Durable.OpsLogged {
		return fmt.Errorf("group commit missing: %d fsyncs for %d ops", fresh.Durable.Fsyncs, fresh.Durable.OpsLogged)
	}
	fmt.Printf("durability perf gate passed: %.0f tx/s >= floor %.0f, ratio %.2f >= 0.25\n",
		fresh.Durable.TxPerSec, floor, fresh.Ratio)
	return nil
}
