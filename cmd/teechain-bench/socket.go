package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"teechain/internal/api/client"
	"teechain/internal/chain"
	"teechain/internal/harness"
	"teechain/internal/wire"
)

// The socket benchmark drives real TCP clusters to saturation: C
// disjoint sender→receiver host pairs (one funded channel each), every
// sender pumping batched payments through its own lane with a bounded
// in-flight window. Aggregate tx/s across channel counts is the
// deployment-path scaling measurement the simulator cannot give us —
// it exercises the per-peer lane concurrency, the binary frame codec,
// and the ack signalling end to end over loopback TCP.
//
// The driver speaks the typed control-plane API (internal/api/client):
// every sender is a client connection issuing pipelined
// PayAsync/PayBatchAsync requests against its node's control listener,
// so the measured path is exactly what external tooling exercises —
// typed frames in, enclave lane fast path, typed completions out.
//
// The committed BENCH_socket.json is the CI regression baseline (see
// compareSocketBaseline); fresh snapshots upload as artifacts.

// socketResult is the measurement for one channel count.
type socketResult struct {
	Channels int     `json:"channels"`
	Payments int     `json:"payments"`
	TxPerSec float64 `json:"tx_per_s"`
	P50Us    float64 `json:"p50_us"`
	P99Us    float64 `json:"p99_us"`
}

// socketSnapshot is the full socket-bench record tracked across PRs.
type socketSnapshot struct {
	GoMaxProcs int            `json:"go_max_procs"`
	Batch      int            `json:"batch"`
	PerChannel int            `json:"payments_per_channel"`
	Results    []socketResult `json:"results"`
}

const socketBenchTimeout = 120 * time.Second

// runSocketBench measures aggregate throughput and batch-ack latency
// for one channel count: channels disjoint TCP host pairs, payments of
// amount 1 per channel, batch payments per frame, window in-flight.
func runSocketBench(channels, payments, batch, window int) (socketResult, error) {
	res := socketResult{Channels: channels, Payments: channels * payments}
	names := make([]string, 0, 2*channels)
	for i := 0; i < channels; i++ {
		names = append(names, fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i))
	}
	c, err := harness.NewCluster(names...)
	if err != nil {
		return res, err
	}
	defer c.Close()

	chIDs := make([]wire.ChannelID, channels)
	for i := 0; i < channels; i++ {
		s, r := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		if err := c.Connect(s, r); err != nil {
			return res, err
		}
		id, err := c.OpenChannel(s, r, chain.Amount(payments)+1)
		if err != nil {
			return res, err
		}
		chIDs[i] = wire.ChannelID(id)
	}

	type sample struct {
		h  *client.Pending
		t0 time.Time
	}
	latCh := make(chan []time.Duration, channels)
	errCh := make(chan error, 2*channels)
	// In-flight bound: the entries channel's capacity caps outstanding
	// batches, so issued-but-unacked payments stay ≈ window.
	inflight := window / batch
	if inflight < 1 {
		inflight = 1
	}
	start := time.Now()
	for i := 0; i < channels; i++ {
		sender := c.Client(fmt.Sprintf("s%d", i))
		sender.SetTimeout(socketBenchTimeout)
		chID := chIDs[i]
		entries := make(chan sample, inflight)
		// Reaper: completions resolve in issue order per channel, so
		// waiting each handle in sequence yields one end-to-end latency
		// sample per batch (typed request -> lane -> typed completion).
		go func() {
			lats := make([]time.Duration, 0, payments/batch+1)
			for e := range entries {
				if err := e.h.Wait(); err != nil {
					errCh <- err
					break
				}
				lats = append(lats, time.Since(e.t0))
			}
			latCh <- lats
		}()
		// Sender: closed loop; enqueueing past the window blocks until
		// the reaper retires the oldest batch.
		go func() {
			defer close(entries)
			amounts := make([]chain.Amount, 0, batch)
			issued := 0
			for issued < payments {
				n := batch
				if payments-issued < n {
					n = payments - issued
				}
				amounts = amounts[:0]
				for j := 0; j < n; j++ {
					amounts = append(amounts, 1)
				}
				t0 := time.Now()
				var h *client.Pending
				var err error
				if n == 1 {
					h, err = sender.PayAsync(chID, 1, 1)
				} else {
					h, err = sender.PayBatchAsync(chID, amounts)
				}
				if err != nil {
					errCh <- err
					return
				}
				issued += n
				entries <- sample{h: h, t0: t0}
			}
		}()
	}

	var lats []time.Duration
	for i := 0; i < channels; i++ {
		lats = append(lats, <-latCh...)
	}
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return res, err
	default:
	}
	res.TxPerSec = float64(channels*payments) / elapsed.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		res.P50Us = float64(lats[len(lats)/2].Microseconds())
		res.P99Us = float64(lats[len(lats)*99/100].Microseconds())
	}
	return res, nil
}

func runSocketSuite(channelList string, payments, batch, reps int) (*socketSnapshot, error) {
	var counts []int
	for _, s := range strings.Split(channelList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad channel count %q", s)
		}
		counts = append(counts, n)
	}
	if reps < 1 {
		reps = 1
	}
	window := 4 * batch
	snap := &socketSnapshot{GoMaxProcs: runtime.GOMAXPROCS(0), Batch: batch, PerChannel: payments}
	fmt.Printf("socket bench: GOMAXPROCS=%d, %d payments/channel, batch=%d, window=%d, best of %d\n",
		snap.GoMaxProcs, payments, batch, window, reps)
	fmt.Printf("%-10s %12s %10s %10s\n", "channels", "tx/s", "p50(us)", "p99(us)")
	for _, n := range counts {
		// Best of reps: one OS scheduling stall mid-run on a loaded
		// machine halves a measurement; the max is the stable signal a
		// regression gate can compare.
		var best socketResult
		for rep := 0; rep < reps; rep++ {
			r, err := runSocketBench(n, payments, batch, window)
			if err != nil {
				return nil, fmt.Errorf("socket bench with %d channels: %w", n, err)
			}
			if r.TxPerSec > best.TxPerSec {
				best = r
			}
		}
		snap.Results = append(snap.Results, best)
		fmt.Printf("%-10d %12.0f %10.0f %10.0f\n", best.Channels, best.TxPerSec, best.P50Us, best.P99Us)
	}
	if len(snap.Results) > 1 {
		first, last := snap.Results[0], snap.Results[len(snap.Results)-1]
		fmt.Printf("scaling %d -> %d channels: %.2fx aggregate tx/s\n",
			first.Channels, last.Channels, last.TxPerSec/first.TxPerSec)
	}
	return snap, nil
}

func writeSocketJSON(path string, snap *socketSnapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// compareSocketBaseline is the CI gate for the socket path: for every
// channel count present in both snapshots, fresh aggregate tx/s may
// not fall more than 25% below the committed baseline.
func compareSocketBaseline(path string, fresh *socketSnapshot) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading socket baseline: %w", err)
	}
	var base socketSnapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing socket baseline %s: %w", path, err)
	}
	byChannels := make(map[int]socketResult, len(base.Results))
	for _, r := range base.Results {
		byChannels[r.Channels] = r
	}
	checked := 0
	for _, r := range fresh.Results {
		b, ok := byChannels[r.Channels]
		if !ok {
			continue
		}
		checked++
		floor := b.TxPerSec * 0.75
		if r.TxPerSec < floor {
			return fmt.Errorf("socket perf regression at %d channels: %.0f tx/s is more than 25%% below baseline %.0f (floor %.0f)",
				r.Channels, r.TxPerSec, b.TxPerSec, floor)
		}
		fmt.Printf("socket gate at %d channels: %.0f tx/s >= floor %.0f (baseline %.0f)\n",
			r.Channels, r.TxPerSec, floor, b.TxPerSec)
	}
	if checked == 0 {
		return fmt.Errorf("socket baseline %s shares no channel counts with the fresh run", path)
	}
	fmt.Printf("socket perf gate passed (%d channel counts checked)\n", checked)
	return nil
}
