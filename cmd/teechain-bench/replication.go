package main

// The replication benchmark reproduces the paper's throughput-vs-
// committee-size measurement (§7, Fig. 8-9) over real TCP: one
// sender->receiver channel pair where the sender runs a committee chain
// of N dedicated member nodes, pumping batched payments through its
// lane fast path while the replication flusher pipelines ReplBatch
// frames down the chain. Every payment's latency therefore includes
// its replication round trip: a PayBatch frame is released to the
// receiver only after the whole chain acknowledged its op.
//
// Alongside the committee-size sweep it measures the PRE-PIPELINE
// baseline: the same committee with pipelining disabled (immediate
// mode, wide-path payments) and one payment per round trip, which is
// exactly how replicated payments behaved before the replication log
// existed. The committed BENCH_replication.json records both; CI gates
// on >25% tx/s regression per committee size (compareReplBaseline).
//
// Like the socket benchmark, the driver is the typed control-plane
// client: pipelined PayBatchAsync requests over the sender's control
// connection, measuring the same enclave path via typed frames.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"teechain/internal/api/client"
	"teechain/internal/chain"
	"teechain/internal/harness"
	"teechain/internal/transport"
	"teechain/internal/wire"
)

// replResult is the measurement for one committee size.
type replResult struct {
	Committee int     `json:"committee"`
	Payments  int     `json:"payments"`
	TxPerSec  float64 `json:"tx_per_s"`
	P50Us     float64 `json:"p50_us"`
	P99Us     float64 `json:"p99_us"`
}

// replSnapshot is the full replication-bench record tracked across PRs.
type replSnapshot struct {
	GoMaxProcs int `json:"go_max_procs"`
	Batch      int `json:"batch"`
	PerRun     int `json:"payments_per_run"`
	// Baseline is the pre-pipeline behavior: committee of 2, immediate
	// (unpipelined) replication, one payment per round trip.
	Baseline replResult   `json:"baseline_per_payment_roundtrip"`
	Results  []replResult `json:"results"`
	// SpeedupVsBaseline is committee-2 pipelined tx/s over the baseline.
	SpeedupVsBaseline float64 `json:"speedup_committee2_vs_baseline"`
}

// runReplBench measures one committee size: payments of amount 1 over a
// single funded channel, batch payments per PayBatch frame, window in
// flight. pipelined false selects the immediate-mode baseline.
func runReplBench(committee, payments, batch, window int, pipelined bool) (replResult, error) {
	res := replResult{Committee: committee, Payments: payments}
	names := []string{"s0", "r0"}
	members := make([]string, 0, committee)
	for i := 1; i <= committee; i++ {
		name := fmt.Sprintf("m%d", i)
		names = append(names, name)
		members = append(members, name)
	}
	var mut func(*transport.Config)
	if !pipelined {
		mut = func(cfg *transport.Config) { cfg.NoReplPipeline = true }
	}
	c, err := harness.NewClusterWith(mut, names...)
	if err != nil {
		return res, err
	}
	defer c.Close()
	if err := c.Connect("s0", "r0"); err != nil {
		return res, err
	}
	if committee > 0 {
		if err := c.FormCommittee("s0", members, min(2, committee+1)); err != nil {
			return res, err
		}
	}
	id, err := c.OpenChannel("s0", "r0", chain.Amount(payments)+1)
	if err != nil {
		return res, err
	}
	chID := wire.ChannelID(id)
	sender := c.Client("s0")
	sender.SetTimeout(socketBenchTimeout)

	type sample struct {
		h  *client.Pending
		t0 time.Time
	}
	// In-flight bound: channel capacity caps outstanding batches, so
	// issued-but-unacked payments stay ≈ window.
	inflight := window / batch
	if inflight < 1 {
		inflight = 1
	}
	entries := make(chan sample, inflight)
	latCh := make(chan []time.Duration, 1)
	errCh := make(chan error, 2)
	// Reaper: completions resolve in issue order per channel; waiting
	// each handle in sequence yields one end-to-end latency sample per
	// batch, replication round trip included.
	go func() {
		lats := make([]time.Duration, 0, payments/batch+1)
		for e := range entries {
			if err := e.h.Wait(); err != nil {
				errCh <- err
				break
			}
			lats = append(lats, time.Since(e.t0))
		}
		latCh <- lats
	}()
	start := time.Now()
	amounts := make([]chain.Amount, 0, batch)
	issued := 0
	for issued < payments {
		n := min(batch, payments-issued)
		amounts = amounts[:0]
		for i := 0; i < n; i++ {
			amounts = append(amounts, 1)
		}
		t0 := time.Now()
		var h *client.Pending
		var err error
		if n == 1 {
			h, err = sender.PayAsync(chID, 1, 1)
		} else {
			h, err = sender.PayBatchAsync(chID, amounts)
		}
		if err != nil {
			close(entries)
			return res, err
		}
		issued += n
		entries <- sample{h: h, t0: t0}
	}
	close(entries)
	lats := <-latCh
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return res, err
	default:
	}
	res.TxPerSec = float64(payments) / elapsed.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		res.P50Us = float64(lats[len(lats)/2].Microseconds())
		res.P99Us = float64(lats[len(lats)*99/100].Microseconds())
	}
	return res, nil
}

// baselinePayments bounds the pre-pipeline baseline run: every payment
// is a full replication round trip plus a payment round trip, so a few
// hundred of them measure the per-payment cost precisely.
const baselinePayments = 300

func runReplSuite(committeeList string, payments, batch, reps int) (*replSnapshot, error) {
	var sizes []int
	for _, s := range strings.Split(committeeList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad committee size %q", s)
		}
		sizes = append(sizes, n)
	}
	if reps < 1 {
		reps = 1
	}
	window := 4 * batch
	snap := &replSnapshot{GoMaxProcs: runtime.GOMAXPROCS(0), Batch: batch, PerRun: payments}
	fmt.Printf("replication bench: GOMAXPROCS=%d, %d payments/run, batch=%d, window=%d, best of %d\n",
		snap.GoMaxProcs, payments, batch, window, reps)

	// Pre-pipeline baseline: committee of 2, immediate replication, one
	// payment per round trip (batch=1, window=1).
	for rep := 0; rep < reps; rep++ {
		r, err := runReplBench(2, baselinePayments, 1, 1, false)
		if err != nil {
			return nil, fmt.Errorf("replication baseline: %w", err)
		}
		if r.TxPerSec > snap.Baseline.TxPerSec {
			snap.Baseline = r
		}
	}
	fmt.Printf("baseline (committee 2, per-payment round trip): %.0f tx/s, p50 %.0fus, p99 %.0fus\n",
		snap.Baseline.TxPerSec, snap.Baseline.P50Us, snap.Baseline.P99Us)

	fmt.Printf("%-10s %12s %10s %10s\n", "committee", "tx/s", "p50(us)", "p99(us)")
	for _, n := range sizes {
		// Best of reps, like the socket bench: the max is the stable
		// signal a regression gate can compare.
		var best replResult
		for rep := 0; rep < reps; rep++ {
			r, err := runReplBench(n, payments, batch, window, true)
			if err != nil {
				return nil, fmt.Errorf("replication bench with committee %d: %w", n, err)
			}
			if r.TxPerSec > best.TxPerSec {
				best = r
			}
		}
		snap.Results = append(snap.Results, best)
		fmt.Printf("%-10d %12.0f %10.0f %10.0f\n", best.Committee, best.TxPerSec, best.P50Us, best.P99Us)
		if n == 2 && snap.Baseline.TxPerSec > 0 {
			snap.SpeedupVsBaseline = best.TxPerSec / snap.Baseline.TxPerSec
		}
	}
	if snap.SpeedupVsBaseline > 0 {
		fmt.Printf("committee-2 pipelined vs per-payment baseline: %.1fx\n", snap.SpeedupVsBaseline)
	}
	return snap, nil
}

func writeReplJSON(path string, snap *replSnapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// compareReplBaseline is the CI gate for the replication path: for
// every committee size present in both snapshots, fresh tx/s may not
// fall more than 25% below the committed baseline.
func compareReplBaseline(path string, fresh *replSnapshot) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading replication baseline: %w", err)
	}
	var base replSnapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing replication baseline %s: %w", path, err)
	}
	bySize := make(map[int]replResult, len(base.Results))
	for _, r := range base.Results {
		bySize[r.Committee] = r
	}
	checked := 0
	for _, r := range fresh.Results {
		b, ok := bySize[r.Committee]
		if !ok {
			continue
		}
		checked++
		floor := b.TxPerSec * 0.75
		if r.TxPerSec < floor {
			return fmt.Errorf("replication perf regression at committee %d: %.0f tx/s is more than 25%% below baseline %.0f (floor %.0f)",
				r.Committee, r.TxPerSec, b.TxPerSec, floor)
		}
		fmt.Printf("replication gate at committee %d: %.0f tx/s >= floor %.0f (baseline %.0f)\n",
			r.Committee, r.TxPerSec, floor, b.TxPerSec)
	}
	if checked == 0 {
		return fmt.Errorf("replication baseline %s shares no committee sizes with the fresh run", path)
	}
	// The immediate-mode baseline is the denominator of the headline
	// speedup; it is measured on every run, so gate it too.
	if base.Baseline.TxPerSec > 0 && fresh.Baseline.TxPerSec > 0 {
		floor := base.Baseline.TxPerSec * 0.75
		if fresh.Baseline.TxPerSec < floor {
			return fmt.Errorf("replication baseline regression: %.0f tx/s is more than 25%% below committed %.0f",
				fresh.Baseline.TxPerSec, base.Baseline.TxPerSec)
		}
	}
	// Acceptance floor: pipelined committee-2 replication must beat the
	// per-payment round trip by at least 10x (measured ~877x; 10x keeps
	// the gate robust to machine noise while catching a pipeline that
	// quietly fell back to stop-and-wait).
	if fresh.SpeedupVsBaseline > 0 && fresh.SpeedupVsBaseline < 10 {
		return fmt.Errorf("pipelined replication speedup collapsed: %.1fx over the per-payment baseline, need >= 10x",
			fresh.SpeedupVsBaseline)
	}
	fmt.Printf("replication perf gate passed (%d committee sizes checked, baseline %.0f tx/s, speedup %.0fx)\n",
		checked, fresh.Baseline.TxPerSec, fresh.SpeedupVsBaseline)
	return nil
}
